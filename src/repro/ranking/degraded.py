"""Gap-tolerant continuous Tranco over a degraded provider feed.

The degraded twin of :class:`repro.ranking.incremental.ContinuousTranco`:
component days arrive through a :class:`~repro.ranking.ingest.DegradedFeed`
(so they can be missing, repeated, truncated, duplicated, drifted, or
retired), pass each component's :class:`~repro.ranking.ingest.IngestGate`,
and fold into a :class:`~repro.ranking.incremental.RollingDowdall` that
understands unrecoverable holes.  Every emitted snapshot carries a
``data_health`` block computed from the ingest ledger — a degraded day
can never share bytes (or an ETag) with a clean one.

:func:`proof_of_degraded_equivalence` is the acceptance check: the
rolling emission must be bit-identical to a batch recompute over the
*same degraded input* (the ledger's resolved cells), every day whose
window holds a non-clean cell must be explicitly marked, days whose
window is entirely clean must match the undegraded batch pipeline
bit-for-bit, and the fault-sequence digest must equal its in-run replay.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.faults.plan import DATA_SITES, FaultPlan
from repro.providers.base import RankedList
from repro.providers.tranco import TrancoProvider, site_rank_vector
from repro.ranking.incremental import RollingDowdall, gap_dowdall_scores
from repro.ranking.ingest import (
    DegradedFeed,
    GapPolicy,
    IngestGate,
    contract_for,
)
from repro.ranking.snapshots import canonical_bytes, snapshot_doc

__all__ = ["DegradedTranco", "proof_of_degraded_equivalence"]


class DegradedTranco:
    """Streams a Tranco aggregation over fault-degraded component feeds."""

    def __init__(
        self,
        tranco: TrancoProvider,
        plan: Optional[FaultPlan],
        policy: Optional[GapPolicy] = None,
        feed: Optional[DegradedFeed] = None,
    ) -> None:
        self._tranco = tranco
        world = tranco.world
        self._world = world
        self.policy = policy or GapPolicy()
        self.feed = feed if feed is not None else DegradedFeed(
            {c.name: c for c in tranco.components}, plan
        )
        self.gates: Dict[str, IngestGate] = {
            c.name: IngestGate(
                contract_for(c, world,
                             truncation_floor=self.policy.truncation_floor),
                self.policy,
            )
            for c in tranco.components
        }
        self._rolling = RollingDowdall(
            n_sites=world.n_sites,
            window=world.config.tranco_window,
            n_components=len(tranco.components),
        )
        #: (component name, day) -> resolved rank vector or None (hole).
        #: This ledger of cells *is* the degraded input the batch twin
        #: recomputes from.
        self.cells: Dict[Tuple[str, int], Optional[np.ndarray]] = {}
        self._next_day = 0

    @property
    def next_day(self) -> int:
        return self._next_day

    @property
    def component_names(self) -> List[str]:
        return [c.name for c in self._tranco.components]

    def advance(self) -> Tuple[RankedList, Dict]:
        """Ingest the next day for every component and emit its list."""
        day = self._next_day
        vectors: List[Optional[np.ndarray]] = []
        for component in self._tranco.components:
            doc, injected = self.feed.fetch(component.name, day)
            record = self.gates[component.name].ingest(
                day, doc, injected=injected
            )
            if record.rows is not None:
                vector: Optional[np.ndarray] = site_rank_vector(
                    self._world, record.rows
                )
            else:
                vector = None
            self.cells[(component.name, day)] = vector
            vectors.append(vector)
        self._rolling.fold_in(day, vectors)
        self._next_day = day + 1
        ranked = self._tranco.assemble_scores(self._rolling.scores(), day)
        return ranked, self.window_health(day)

    def window_health(self, day: int) -> Dict:
        """The ``data_health`` block for the emission of ``day``.

        A pure function of the ingest ledger over the aggregation window,
        so the batch twin reproduces it from the same records.
        """
        window = list(self._tranco.window_days(day))
        components: Dict[str, Dict] = {}
        counts = {"clean": 0, "repaired": 0, "carried_forward": 0,
                  "unrecoverable": 0, "retired": 0}
        for name in self.component_names:
            gate = self.gates[name]
            in_window = [gate.records[d] for d in window]
            today = in_window[-1]
            window_counts: Dict[str, int] = {}
            for record in in_window:
                window_counts[record.resolution] = (
                    window_counts.get(record.resolution, 0) + 1
                )
                counts[record.resolution] += 1
            components[name] = {
                "status": today.resolution,
                "staleness": today.staleness,
                "retired": gate.retired_at is not None,
                "window": window_counts,
            }
        degraded = (counts["repaired"] + counts["carried_forward"]
                    + counts["unrecoverable"] + counts["retired"]) > 0
        quarantined_total = sum(
            1 for gate in self.gates.values()
            for record in gate.records if record.status == "quarantined"
        )
        return {
            "degraded": degraded,
            "window_days": [window[0], window[-1]],
            "cells": counts,
            "quarantined_total": quarantined_total,
            "components": components,
        }


def proof_of_degraded_equivalence(
    tranco: TrancoProvider,
    plan: FaultPlan,
    *,
    days: Optional[Sequence[int]] = None,
    k: Optional[int] = None,
    policy: Optional[GapPolicy] = None,
) -> Dict:
    """Prove (or refute) the degraded-pipeline invariants.

    Runs :class:`DegradedTranco` from day 0 through the last requested
    day and checks, per requested day:

    * **equivalence** — raw score bits, ranked rows, and canonical
      snapshot bytes (``data_health`` included) match a batch recompute
      over the ledger's resolved cells for the same window;
    * **marking** — ``data_health.degraded`` is True exactly when the
      window holds a non-clean cell (zero silent corruption);
    * **clean-path identity** — days whose window is entirely clean are
      bit-identical to the undegraded batch ``daily_list``.

    Plus, per run: every armed ``data.*`` site fired, and the feed's
    fault-sequence digest equals its in-run replay.
    """
    world = tranco.world
    if days is None:
        days = range(world.config.n_days)
    wanted = sorted(set(int(d) for d in days))
    if not wanted:
        raise ValueError("no days to verify")
    if wanted[0] < 0:
        raise ValueError("days must be >= 0")
    pipeline = DegradedTranco(tranco, plan, policy=policy)
    names = pipeline.component_names
    checked: List[Dict] = []
    mismatches: List[int] = []
    marking_errors: List[int] = []
    clean_mismatches: List[int] = []
    degraded_days: List[int] = []
    clean_days: List[int] = []
    for day in range(wanted[-1] + 1):
        ranked, health = pipeline.advance()
        if day not in wanted:
            continue
        window = list(tranco.window_days(day))
        cells = [
            [pipeline.cells[(name, d)] for d in window] for name in names
        ]
        batch_scores = gap_dowdall_scores(cells, world.n_sites)
        batch_ranked = tranco.assemble_scores(batch_scores, day)
        batch_health = pipeline.window_health(day)
        rolling_scores = pipeline._rolling.scores()
        inc_doc = snapshot_doc(ranked, world, k=k, data_health=health)
        batch_doc = snapshot_doc(batch_ranked, world, k=k,
                                 data_health=batch_health)
        inc_bytes = canonical_bytes(inc_doc)
        batch_bytes = canonical_bytes(batch_doc)
        window_clean = all(
            pipeline.gates[name].records[d].resolution == "clean"
            for name in names for d in window
        )
        entry = {
            "day": day,
            "scores_identical":
                rolling_scores.tobytes() == batch_scores.tobytes(),
            "ranks_identical":
                np.array_equal(ranked.name_rows, batch_ranked.name_rows),
            "snapshot_identical": inc_bytes == batch_bytes,
            "sha256": hashlib.sha256(inc_bytes).hexdigest(),
            "degraded": health["degraded"],
            "window_clean": window_clean,
        }
        if not (entry["scores_identical"] and entry["ranks_identical"]
                and entry["snapshot_identical"]):
            mismatches.append(day)
        # Zero silent corruption: marked if and only if the window holds
        # a non-clean cell, checked from the ledger, not from the block.
        if health["degraded"] == window_clean:
            marking_errors.append(day)
        if window_clean:
            clean_days.append(day)
            batch_clean = tranco.daily_list(day)
            if not np.array_equal(ranked.name_rows, batch_clean.name_rows):
                clean_mismatches.append(day)
                entry["clean_identical"] = False
            else:
                entry["clean_identical"] = True
        else:
            degraded_days.append(day)
        checked.append(entry)
    armed = sorted(
        {rule.site for rule in plan.rules if rule.site in DATA_SITES}
    )
    fired = pipeline.feed.fired_sites()
    digest = pipeline.feed.fault_digest()
    replay = pipeline.feed.replay_digest()
    return {
        "provider": tranco.name,
        "window": world.config.tranco_window,
        "days_checked": len(checked),
        "identical": not mismatches,
        "mismatched_days": mismatches,
        "marking_consistent": not marking_errors,
        "marking_error_days": marking_errors,
        "clean_days": clean_days,
        "clean_days_identical": not clean_mismatches,
        "clean_mismatched_days": clean_mismatches,
        "degraded_days": degraded_days,
        "armed_sites": armed,
        "sites_fired": fired,
        "all_armed_sites_fired": all(site in fired for site in armed),
        "fault_digest": digest,
        "replay_digest": replay,
        "digest_match": digest == replay,
        "ok": (not mismatches and not marking_errors
               and not clean_mismatches and digest == replay
               and all(site in fired for site in armed)),
        "days": checked,
    }
