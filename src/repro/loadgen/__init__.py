"""``repro loadgen`` — a deterministic load harness for the serve layer.

Layers, one module per concern:

* :mod:`repro.loadgen.personas` — seeded client behaviors (dashboard
  pollers, researchers, health probes) that plan requests from a
  hash-counter stream and validate every body they get back.
* :mod:`repro.loadgen.engine` — the asyncio engine: keep-alive
  raw-socket HTTP/1.1 connection pool, open-loop token-bucket pacing,
  closed-loop sessions, retries that honor ``Retry-After``.
* :mod:`repro.loadgen.histogram` — mergeable log-bucketed latency
  histograms with bounded quantile error.
* :mod:`repro.loadgen.metrics` — the outcome taxonomy (ok / shed /
  drift / ...), per-phase counters, merged totals, spill round-trip.
* :mod:`repro.loadgen.pool` — the multi-process client pool: sharded
  persona schedules, per-worker spill files, merged results.
* :mod:`repro.loadgen.report` — the ``LOADGEN_<yyyymmdd>.json``
  document and the SLO gate that decides the exit code.
* :mod:`repro.loadgen.trajectory` — the ``LATENCY_<yyyymmdd>.json``
  latency-trajectory document and the run-over-run p99 drift gate.
* :mod:`repro.loadgen.spawn` — forking and draining a ``repro serve``
  child for self-contained ``--spawn`` runs.
* :mod:`repro.loadgen.harness` — phase orchestration tying it together.
"""

from repro.loadgen.engine import (
    ClientStats,
    ConnectionPool,
    LoadEngine,
    PhaseSpec,
    TokenBucket,
    discover_catalog,
)
from repro.loadgen.harness import LoadgenOptions, LoadgenResult, run_loadgen
from repro.loadgen.histogram import LatencyHistogram
from repro.loadgen.metrics import Outcome, PhaseMetrics
from repro.loadgen.personas import (
    Catalog,
    DashboardPoller,
    HashStream,
    HealthProbe,
    Persona,
    PlannedRequest,
    Researcher,
    apportion,
    make_persona,
    parse_mix,
    roster,
)
from repro.loadgen.pool import PoolResult, run_pool
from repro.loadgen.report import (
    LOADGEN_SCHEMA_VERSION,
    GateResult,
    SloThresholds,
    build_report,
    loadgen_path,
    write_report,
)
from repro.loadgen.trajectory import (
    LATENCY_SCHEMA_VERSION,
    build_trajectory,
    compare_trajectories,
    latency_path,
    write_trajectory,
)

__all__ = [
    "Catalog",
    "ClientStats",
    "ConnectionPool",
    "DashboardPoller",
    "GateResult",
    "HashStream",
    "HealthProbe",
    "LATENCY_SCHEMA_VERSION",
    "LOADGEN_SCHEMA_VERSION",
    "LatencyHistogram",
    "LoadEngine",
    "LoadgenOptions",
    "LoadgenResult",
    "Outcome",
    "Persona",
    "PhaseMetrics",
    "PhaseSpec",
    "PlannedRequest",
    "PoolResult",
    "Researcher",
    "SloThresholds",
    "TokenBucket",
    "apportion",
    "build_report",
    "build_trajectory",
    "compare_trajectories",
    "discover_catalog",
    "latency_path",
    "loadgen_path",
    "make_persona",
    "parse_mix",
    "roster",
    "run_loadgen",
    "run_pool",
    "write_report",
    "write_trajectory",
]
