"""``repro loadgen`` — a deterministic load harness for the serve layer.

Layers, one module per concern:

* :mod:`repro.loadgen.personas` — seeded client behaviors (dashboard
  pollers, researchers, health probes) that plan requests from a
  hash-counter stream and validate every body they get back.
* :mod:`repro.loadgen.engine` — the asyncio engine: raw-socket HTTP/1.1
  client, open-loop token-bucket pacing, closed-loop sessions, retries
  that honor ``Retry-After``.
* :mod:`repro.loadgen.histogram` — mergeable log-bucketed latency
  histograms with bounded quantile error.
* :mod:`repro.loadgen.metrics` — the outcome taxonomy (ok / shed /
  drift / ...), per-phase counters, merged totals.
* :mod:`repro.loadgen.report` — the ``LOADGEN_<yyyymmdd>.json``
  document and the SLO gate that decides the exit code.
* :mod:`repro.loadgen.spawn` — forking and draining a ``repro serve``
  child for self-contained ``--spawn`` runs.
* :mod:`repro.loadgen.harness` — phase orchestration tying it together.
"""

from repro.loadgen.engine import LoadEngine, PhaseSpec, TokenBucket, discover_catalog
from repro.loadgen.harness import LoadgenOptions, LoadgenResult, run_loadgen
from repro.loadgen.histogram import LatencyHistogram
from repro.loadgen.metrics import Outcome, PhaseMetrics
from repro.loadgen.personas import (
    Catalog,
    DashboardPoller,
    HashStream,
    HealthProbe,
    Persona,
    PlannedRequest,
    Researcher,
    apportion,
    make_persona,
    parse_mix,
)
from repro.loadgen.report import (
    LOADGEN_SCHEMA_VERSION,
    GateResult,
    SloThresholds,
    build_report,
    loadgen_path,
    write_report,
)

__all__ = [
    "Catalog",
    "DashboardPoller",
    "GateResult",
    "HashStream",
    "HealthProbe",
    "LOADGEN_SCHEMA_VERSION",
    "LatencyHistogram",
    "LoadEngine",
    "LoadgenOptions",
    "LoadgenResult",
    "Outcome",
    "Persona",
    "PhaseMetrics",
    "PhaseSpec",
    "PlannedRequest",
    "Researcher",
    "SloThresholds",
    "TokenBucket",
    "apportion",
    "build_report",
    "discover_catalog",
    "loadgen_path",
    "make_persona",
    "parse_mix",
    "run_loadgen",
    "write_report",
]
