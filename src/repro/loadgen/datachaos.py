"""``repro chaos-data``: the end-to-end degraded-provider ingestion gate.

Two stages, one verdict:

* **Pipeline stage (in-process).**  A dedicated world runs
  :func:`~repro.ranking.degraded.proof_of_degraded_equivalence` under a
  :func:`~repro.faults.plan.default_data_plan`: the gap-tolerant rolling
  aggregation must be bit-identical to a batch recompute over the same
  degraded input, every day whose window holds a non-clean cell must be
  explicitly marked, fully-clean windows must match the undegraded
  pipeline byte for byte, every armed ``data.*`` site must fire, and the
  fault-sequence digest must replay exactly.

* **Serve stage (child process).**  A ``repro serve`` child is armed
  with a *data-only* fault plan (no store or transport chaos — degraded
  data owns the error budget here) and driven with a fixed scripted
  client mix over list, stability, index, and health surfaces.  Every
  200 list body must carry a well-formed ``data_health`` block, at
  least one degraded day must actually be observed, availability must
  clear the loadgen floor, the child's ``/metricz`` data block must
  show every armed site fired with ``digest == replay_digest``, and the
  child must drain clean on SIGTERM.

Determinism is structural: provider days resolve strictly sequentially
and are memoized, so each ``(provider, day)`` fault key is consulted at
most once regardless of request interleaving, and the printed
``fault digest`` — pipeline and serve digests joined — is a pure
function of the seed.  CI runs the gate twice and requires the printed
digests to match byte for byte.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro import obs
from repro.faults.plan import DATA_SITES, default_data_plan
from repro.loadgen.engine import LoadEngine, discover_catalog
from repro.loadgen.personas import (
    Catalog,
    Persona,
    PlannedRequest,
    validate_data_health,
)
from repro.loadgen.report import GateResult
from repro.runner.retry import RetryPolicy

__all__ = [
    "ChaosDataOptions",
    "ChaosDataResult",
    "DataScriptPersona",
    "build_data_script",
    "run_chaos_data",
    "write_data_plan",
]

#: The availability floor (matches the loadgen and chaos-net gates).
CHAOS_DATA_AVAILABILITY_FLOOR = 0.99

#: Script length: quick for CI smoke, full for soaks.
_QUICK_REQUESTS = 90
_FULL_REQUESTS = 300

#: The component providers the default data plan degrades.
DATA_PROVIDERS = ("alexa", "umbrella", "majestic")

#: In-process pipeline-proof world shapes.  Small enough for CI, deep
#: enough that the rolling window actually slides (window < n_days) and
#: the plan's pinned days spread across distinct windows.
_PIPELINE_QUICK = {"n_sites": 600, "n_days": 12, "tranco_window": 4}
_PIPELINE_FULL = {"n_sites": 1500, "n_days": 16, "tranco_window": 5}


class DataScriptPersona(Persona):
    """The driver's identity for the serve stage.

    Beyond the engine's own checks (every 200 parses as JSON), the
    persona enforces the data-chaos contract per surface: list bodies
    must carry a well-formed ``data_health`` block (shape-checked by
    :func:`~repro.loadgen.personas.validate_data_health`), stability
    bodies must summarize degraded days, and the lists index must admit
    it is running under data chaos.  It also counts degraded days seen,
    so the gate can prove the faults were *observable*, not just fired.
    """

    kind = "script"

    def __init__(self, persona_id: str, seed: int, catalog: Catalog) -> None:
        super().__init__(persona_id, seed, catalog)
        self.health_bodies = 0
        self.degraded_seen = 0
        self.statuses: Dict[str, int] = {}

    def validate(self, request: PlannedRequest, body: object) -> Optional[str]:
        if not isinstance(body, dict):
            return f"expected a JSON object, got {type(body).__name__}"
        if request.kind == "lists":
            health = body.get("data_health")
            if health is None:
                return "list body missing data_health under data chaos"
            error = validate_data_health(health)
            if error is not None:
                return error
            self.health_bodies += 1
            status = str(health["status"])
            self.statuses[status] = self.statuses.get(status, 0) + 1
            if health["degraded"]:
                self.degraded_seen += 1
            return None
        if request.kind == "lists-stability":
            health = body.get("data_health")
            if not isinstance(health, dict):
                return "stability body missing data_health under data chaos"
            degraded_days = health.get("degraded_days")
            if not isinstance(degraded_days, int) or degraded_days < 0:
                return f"stability degraded_days malformed: {degraded_days!r}"
            if not isinstance(health.get("by_status"), dict):
                return "stability by_status missing or not an object"
            return None
        if request.kind == "lists-index":
            if body.get("data_chaos") is not True:
                return "lists index does not report data_chaos under chaos"
            return None
        return None


def build_data_script(catalog: Catalog, count: int) -> List[PlannedRequest]:
    """A fixed, deterministic request script for the serve stage.

    Pure rotation, no RNG.  Opens by requesting the **last** day of each
    degraded provider — sequential memoized resolution means that one
    request forces the provider's whole day range through the ingest
    gate, so every pinned fault day is consulted no matter how short the
    script.  The rotation then mixes list slices across all providers
    and days, per-provider stability surfaces, the lists index, and
    health probes.
    """
    providers = list(catalog.providers)
    degraded = [p for p in DATA_PROVIDERS if p in providers] or providers
    days = max(1, catalog.days)
    last = days - 1
    ks = (25, 50, 100)

    def _request(path: str, kind: str) -> PlannedRequest:
        return PlannedRequest(
            path=path, kind=kind, think_seconds=0.0,
            persona_id="datachaos-driver", conditional=False,
        )

    script: List[PlannedRequest] = [
        _request(f"/v1/lists/{provider}/{last}?k=50", "lists")
        for provider in degraded
    ]
    for i in range(max(0, count - len(script))):
        slot = i % 6
        if slot in (0, 3):
            provider = degraded[(i // 6 + slot) % len(degraded)]
            path = f"/v1/lists/{provider}/{i % days}?k={ks[i % len(ks)]}"
            script.append(_request(path, "lists"))
        elif slot == 1:
            provider = providers[(i // 6) % len(providers)]
            path = f"/v1/lists/{provider}/{(i // 2) % days}?k={ks[i % len(ks)]}"
            script.append(_request(path, "lists"))
        elif slot == 2:
            provider = degraded[(i // 6) % len(degraded)]
            script.append(
                _request(f"/v1/lists/{provider}/stability?k=50",
                         "lists-stability")
            )
        elif slot == 4:
            script.append(_request("/v1/lists", "lists-index"))
        else:
            script.append(_request("/healthz", "health"))
    return script


def write_data_plan(seed: int, out_dir: Path, n_days: int) -> Path:
    """Write the serve child's data-only fault plan to a JSON file."""
    plan = default_data_plan(seed, n_days, providers=DATA_PROVIDERS)
    path = Path(out_dir) / "data_fault_plan.json"
    path.write_text(
        json.dumps(plan.to_dict(), indent=2, sort_keys=True) + "\n"
    )
    return path


@dataclass
class ChaosDataOptions:
    seed: int = 7
    quick: bool = False
    requests: Optional[int] = None  # override the quick/full script size
    cache_dir: Optional[str] = None
    jobs: int = 2
    manifest_path: Optional[str] = None


@dataclass
class ChaosDataResult:
    ok: bool
    gates: List[GateResult]
    digest: str
    manifest: Dict[str, object]
    manifest_path: Optional[str] = None
    lines: List[str] = field(default_factory=list)

    def render(self) -> str:
        return "\n".join(self.lines)


def _gate(name: str, passed: bool, measured: float, threshold: float,
          detail: str = "") -> GateResult:
    return GateResult(
        name=name, passed=passed, measured=measured,
        threshold=threshold, detail=detail,
    )


def _get_json(host: str, port: int, path: str, timeout: float = 5.0) -> dict:
    import http.client

    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        payload = response.read()
        if response.status != 200:
            raise RuntimeError(f"GET {path} -> {response.status}")
        return json.loads(payload)
    finally:
        connection.close()


def _run_pipeline_proof(seed: int, quick: bool) -> Dict:
    """The in-process stage: degraded-vs-batch equivalence proof."""
    from repro.providers.registry import build_providers
    from repro.worldgen.config import WorldConfig
    from repro.worldgen.world import build_world

    shape = _PIPELINE_QUICK if quick else _PIPELINE_FULL
    config = WorldConfig(seed=seed, **shape)
    world = build_world(config)
    tranco = build_providers(world)["tranco"]
    plan = default_data_plan(seed, config.n_days, providers=DATA_PROVIDERS)
    from repro.ranking.degraded import proof_of_degraded_equivalence

    proof = proof_of_degraded_equivalence(tranco, plan)
    proof["config"] = {
        "n_sites": config.n_sites, "n_days": config.n_days,
        "tranco_window": config.tranco_window, "seed": seed,
    }
    return proof


def run_chaos_data(options: ChaosDataOptions) -> ChaosDataResult:
    """Run the degraded-data chaos gate end to end (blocking)."""
    from repro.core.experiments import SPECS
    from repro.loadgen import spawn as spawn_mod
    from repro.qa.goldens import GOLDEN_CONFIG
    from repro.store import default_cache_dir

    config = GOLDEN_CONFIG
    cache_dir = options.cache_dir or str(default_cache_dir())
    names = sorted(SPECS)
    count = options.requests or (
        _QUICK_REQUESTS if options.quick else _FULL_REQUESTS
    )

    print(f"[chaos-data: pipeline proof, seed {options.seed}, "
          f"{'quick' if options.quick else 'full'} world]")
    proof = _run_pipeline_proof(options.seed, options.quick)

    print(f"[chaos-data: ensuring {len(names)} result(s) in {cache_dir}]")
    failures = spawn_mod.ensure_results(
        names, config, cache_dir, jobs=options.jobs
    )
    if failures:
        raise RuntimeError(
            f"could not populate results: {', '.join(failures)}"
        )

    scratch = tempfile.mkdtemp(prefix="repro-chaosdata-")
    # Data faults own the error budget: the child gets *only* the data
    # plan (no store chaos, no transport chaos), so any non-200 in the
    # script is a real serving bug, not absorbed noise.
    data_plan_path = write_data_plan(
        options.seed, Path(scratch), config.n_days
    )
    armed_sites = sorted(DATA_SITES)
    access_log = f"{scratch}/serve_access.log"
    child_port = spawn_mod.free_port()
    command = spawn_mod.serve_command(
        port=child_port,
        cache_dir=cache_dir,
        quick=True,
        jobs=2,
        queue_depth=4,
        deadline_ms=5000.0,
        breaker_cooldown=0.4,
        fault_plan=data_plan_path,
        access_log=access_log,
    )
    server = spawn_mod.SpawnedServer(command, "127.0.0.1", child_port)
    print(f"[chaos-data: serve child on port {child_port}; warming...]")
    server.start()

    drain_code: Optional[int] = None
    data_metrics: Dict[str, object] = {}
    try:
        server.wait_ready()
        catalog = discover_catalog("127.0.0.1", child_port)
        script = build_data_script(catalog, count)
        print(f"[chaos-data: driving {len(script)} scripted requests, "
              f"seed {options.seed}, {len(armed_sites)} armed data sites]")
        tracer = obs.Tracer("chaos-data")
        engine = LoadEngine(
            "127.0.0.1", child_port, catalog, options.seed,
            expectations={},
            tracer=tracer,
            policy=RetryPolicy(
                max_attempts=4, base_delay=0.05, multiplier=2.0,
                max_delay=0.4,
            ),
            timeout=6.0,
            keepalive=False,
        )
        persona = DataScriptPersona("datachaos-driver", options.seed, catalog)
        phase = engine.run_script("chaos-data", persona, script)
        metricz = _get_json("127.0.0.1", child_port, "/metricz")
        data_metrics = metricz.get("data", {}) or {}
    finally:
        drain_code = server.stop()

    fired = dict(data_metrics.get("fired") or {})
    serve_digest = data_metrics.get("digest")
    serve_replay = data_metrics.get("replay_digest")
    missing = [site for site in armed_sites if not fired.get(site)]
    pipeline_digest = proof["fault_digest"]
    digest = f"{pipeline_digest}/{serve_digest}"

    gates = [
        _gate(
            "pipeline_equivalence",
            bool(proof["identical"] and proof["clean_days_identical"]),
            float(len(proof["mismatched_days"])
                  + len(proof["clean_mismatched_days"])),
            0.0,
            f"{proof['days_checked']} days vs batch recompute "
            f"({len(proof['degraded_days'])} degraded)",
        ),
        _gate(
            "pipeline_marking",
            bool(proof["marking_consistent"]),
            float(len(proof["marking_error_days"])),
            0.0,
            "degraded iff window holds a non-clean cell",
        ),
        _gate(
            "pipeline_sites_fired",
            bool(proof["all_armed_sites_fired"]),
            float(len(proof["sites_fired"])),
            float(len(proof["armed_sites"])),
            "pipeline stage fired: " + ", ".join(
                f"{s}={n}" for s, n in sorted(proof["sites_fired"].items())
            ),
        ),
        _gate(
            "pipeline_digest_replay",
            bool(proof["digest_match"]),
            1.0 if proof["digest_match"] else 0.0, 1.0,
            f"{pipeline_digest[:16]}.. replays in-run",
        ),
        _gate(
            "serve_sites_fired",
            not missing,
            float(len(armed_sites) - len(missing)),
            float(len(armed_sites)),
            "all armed data sites fired at the child" if not missing
            else f"never fired: {', '.join(missing)}",
        ),
        _gate(
            "serve_health_marked",
            persona.health_bodies > 0 and persona.degraded_seen > 0,
            float(persona.degraded_seen),
            1.0,
            f"{persona.health_bodies} list bodies carried data_health, "
            f"{persona.degraded_seen} degraded",
        ),
        _gate(
            "availability",
            phase.availability >= CHAOS_DATA_AVAILABILITY_FLOOR,
            phase.availability,
            CHAOS_DATA_AVAILABILITY_FLOOR,
            f"{phase.requests} requests, "
            f"{phase.by_outcome['ok'] + phase.by_outcome['not_modified']} good",
        ),
        _gate(
            "serve_digest_replay",
            bool(serve_digest) and serve_digest == serve_replay,
            1.0 if (serve_digest and serve_digest == serve_replay) else 0.0,
            1.0,
            f"observed {str(serve_digest)[:16]}.. vs replayed "
            f"{str(serve_replay)[:16]}..",
        ),
        _gate(
            "drain", drain_code == 0, float(drain_code or 0), 0.0,
            "child exited clean on SIGTERM",
        ),
    ]
    ok = all(gate.passed for gate in gates)

    manifest: Dict[str, object] = {
        "seed": options.seed,
        "quick": options.quick,
        "requests": count,
        "pipeline": {
            key: proof[key] for key in (
                "config", "window", "days_checked", "identical",
                "marking_consistent", "clean_days", "degraded_days",
                "armed_sites", "sites_fired", "fault_digest",
                "replay_digest", "digest_match", "ok",
            )
        },
        "serve": {
            "command": command,
            "fault_plan": str(data_plan_path),
            "access_log": access_log,
            "drain_exit_code": drain_code,
            "data": data_metrics,
        },
        "script": {
            "health_bodies": persona.health_bodies,
            "degraded_seen": persona.degraded_seen,
            "statuses": dict(sorted(persona.statuses.items())),
        },
        "phase": {
            "requests": phase.requests,
            "attempts": phase.attempts,
            "availability": round(phase.availability, 6),
            "error_rate": round(phase.error_rate, 6),
            "by_outcome": {
                kind: n for kind, n in phase.by_outcome.items() if n
            },
        },
        "client": engine.client_stats.to_dict(),
        "fault_digest": digest,
        "gates": [gate.to_dict() for gate in gates],
        "ok": ok,
    }

    manifest_path = options.manifest_path
    if manifest_path:
        path = Path(manifest_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")

    lines = [
        f"chaos-data seed {options.seed}: {proof['days_checked']} pipeline "
        f"days proved, {phase.requests} scripted requests at the child",
        "pipeline fires: " + (
            ", ".join(f"{s}={n}"
                      for s, n in sorted(proof["sites_fired"].items()))
            or "none"
        ),
        "serve fires: " + (
            ", ".join(f"{s}={n}" for s, n in sorted(fired.items()))
            or "none"
        ),
        "list health statuses: " + (
            ", ".join(f"{s}={n}"
                      for s, n in sorted(persona.statuses.items()))
            or "none"
        ),
        "outcomes: " + ", ".join(
            f"{kind}={n}" for kind, n in sorted(phase.by_outcome.items()) if n
        ),
        f"fault digest: {digest}",
    ]
    for gate in gates:
        status = "PASS" if gate.passed else "FAIL"
        lines.append(
            f"  [{status}] {gate.name}: {gate.measured:g} "
            f"(threshold {gate.threshold:g}) {gate.detail}"
        )
    if manifest_path:
        lines.append(f"manifest: {manifest_path}")
    return ChaosDataResult(
        ok=ok, gates=gates, digest=digest, manifest=manifest,
        manifest_path=manifest_path, lines=lines,
    )
