"""Spawning and managing a ``repro serve`` child for self-contained runs.

``repro loadgen --spawn`` owns its whole target lifecycle: ensure the
results cache is populated, pin the golden response bodies straight from
the artifact store (the same ``json.dumps(blob, sort_keys=True)`` bytes
the server puts on the wire), write the chaos fault plan to a temp file,
fork ``python -m repro.cli serve`` on a self-picked free port, poll
``/readyz`` until warm, run the phases, then SIGTERM the child and
require a clean drain (exit 0).

The child is a real subprocess on a real socket — not an in-process
service — because the point of the harness is to measure the serving
stack end to end: kernel accept queue, thread dispatch, admission gate,
the lot.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.faults.plan import default_serve_plan
from repro.store.artifacts import ArtifactStore, config_key
from repro.worldgen.config import WorldConfig

__all__ = [
    "SpawnedServer",
    "ensure_results",
    "free_port",
    "pin_expectations",
    "serve_command",
    "write_fault_plan",
]

#: Chaos defaults for the spawned child: one injected 5xx per lists path
#: with this probability (bounded by the personas' small watchlists), and
#: one clean warmup read per key before the store faults arm.
CHAOS_ERROR_PROBABILITY = 0.25
CHAOS_WARMUP_READS = 1


def free_port(host: str = "127.0.0.1") -> int:
    """A currently-free TCP port, picked by the kernel.

    The ``repro serve`` banner prints ``(ephemeral)`` for ``--port 0``,
    so a parent cannot discover a child's self-picked port; instead the
    parent picks one here and passes it explicitly.  The tiny window
    between close and the child's bind is acceptable for a test harness.
    """
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.bind((host, 0))
        return probe.getsockname()[1]
    finally:
        probe.close()


def ensure_results(
    names: Sequence[str],
    config: WorldConfig,
    cache_dir: str,
    jobs: int = 1,
) -> List[str]:
    """Compute any missing ``results/<name>`` blobs; returns failures."""
    probe = ArtifactStore(cache_dir)
    cfg_key = config_key(config)
    missing = [
        name for name in names
        if probe.get_json(cfg_key, f"results/{name}") is None
    ]
    if not missing:
        return []
    from repro.runner import run_experiments

    _payloads, manifest, _path = run_experiments(
        missing, config, jobs=max(1, jobs), cache_dir=cache_dir
    )
    return [outcome.name for outcome in manifest.failures]


def pin_expectations(
    names: Sequence[str],
    config: WorldConfig,
    cache_dir: str,
) -> Dict[str, bytes]:
    """Golden wire bodies per ``/v1/experiments/<name>`` path.

    The server serializes result blobs as
    ``json.dumps(blob, sort_keys=True).encode("utf-8")`` — reproducing
    that here (from a fault-free read in *this* process, before the
    chaos plan ever runs) gives the engine byte-exact drift detection
    on every researcher request.
    """
    store = ArtifactStore(cache_dir)
    cfg_key = config_key(config)
    expectations: Dict[str, bytes] = {}
    for name in names:
        blob = store.get_json(cfg_key, f"results/{name}")
        if blob is None:
            continue
        expectations[f"/v1/experiments/{name}"] = json.dumps(
            blob, sort_keys=True
        ).encode("utf-8")
    return expectations


def write_fault_plan(
    seed: int,
    out_dir: Optional[os.PathLike] = None,
    error_probability: float = CHAOS_ERROR_PROBABILITY,
) -> Path:
    """Write the loadgen chaos plan to a JSON file the child can load.

    ``warmup_reads=1`` lets the child's warmup read each results key
    once, clean — the store faults then land on the first *live* read
    per key, which is the scenario worth testing.
    """
    plan = default_serve_plan(
        seed,
        warmup_reads=CHAOS_WARMUP_READS,
        error_probability=error_probability,
    )
    directory = Path(os.fspath(out_dir)) if out_dir is not None else Path(
        tempfile.mkdtemp(prefix="repro-loadgen-")
    )
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"fault_plan_{seed}.json"
    path.write_text(plan.to_json() + "\n")
    return path


def serve_command(
    *,
    port: int,
    cache_dir: str,
    quick: bool = True,
    jobs: int = 2,
    queue_depth: int = 4,
    deadline_ms: float = 1000.0,
    breaker_cooldown: float = 0.4,
    fault_plan: Optional[os.PathLike] = None,
    access_log: Optional[os.PathLike] = None,
    python: Optional[str] = None,
) -> List[str]:
    """The argv for the ``repro serve`` child (pure; easy to test).

    Small ``--jobs``/``--queue-depth`` on purpose: the saturation phase
    must be able to fill the admission gate with a CI-sized worker
    fleet, and a 2-slot/4-queue gate saturates at ~tens of concurrent
    closed-loop sessions.
    """
    command = [
        python if python is not None else sys.executable,
        "-m", "repro.cli", "serve",
        "--port", str(port),
        "--cache-dir", str(cache_dir),
        "--jobs", str(jobs),
        "--queue-depth", str(queue_depth),
        "--deadline-ms", str(deadline_ms),
        "--breaker-cooldown", str(breaker_cooldown),
    ]
    if quick:
        command.append("--quick")
    if fault_plan is not None:
        command.extend(["--fault-plan", os.fspath(fault_plan)])
    if access_log is not None:
        command.extend(["--access-log", os.fspath(access_log)])
    return command


class SpawnedServer:
    """Lifecycle wrapper around one ``repro serve`` subprocess."""

    def __init__(self, command: Sequence[str], host: str, port: int) -> None:
        self.command = list(command)
        self.host = host
        self.port = port
        self.process: Optional[subprocess.Popen] = None

    def start(self) -> None:
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        self.process = subprocess.Popen(
            self.command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
        )

    def wait_ready(self, timeout: float = 90.0) -> None:
        """Poll ``/readyz`` until 200 (warmup can take tens of seconds).

        Raises:
            RuntimeError: the child exited, or readiness timed out.
        """
        assert self.process is not None, "start() first"
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            code = self.process.poll()
            if code is not None:
                output = b""
                if self.process.stdout is not None:
                    output = self.process.stdout.read() or b""
                raise RuntimeError(
                    f"serve child exited {code} before ready:\n"
                    + output.decode("utf-8", "replace")[-2000:]
                )
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=2.0
            )
            try:
                connection.request("GET", "/readyz")
                response = connection.getresponse()
                response.read()
                if response.status == 200:
                    return
            except (ConnectionError, OSError, http.client.HTTPException):
                pass
            finally:
                connection.close()
            time.sleep(0.1)
        self.stop()
        raise RuntimeError(f"serve child not ready within {timeout}s")

    def stop(self, drain_timeout: float = 15.0) -> int:
        """SIGTERM the child and wait for a (hopefully clean) exit.

        Returns the child's exit code; kills outright on drain timeout
        (returning the kill code, which callers treat as a failure).
        """
        if self.process is None:
            return 0
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
            try:
                self.process.wait(timeout=drain_timeout)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()
        if self.process.stdout is not None:
            self.process.stdout.read()
            self.process.stdout.close()
        return int(self.process.returncode or 0)

    def output_tail(self, limit: int = 2000) -> str:
        """Best-effort tail of the child's combined output (post-exit)."""
        if self.process is None or self.process.stdout is None:
            return ""
        try:
            data = self.process.stdout.read() or b""
        except ValueError:  # already closed
            return ""
        return data.decode("utf-8", "replace")[-limit:]
