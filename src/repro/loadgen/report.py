"""The ``LOADGEN_<yyyymmdd>.json`` report and its SLO gate.

The report mirrors the BENCH document conventions (schema version,
stable sorted-key JSON, dated filename) so tooling that diffs one can
diff the other.  Unlike BENCH it carries a verdict: the harness's
structural gates (did saturation actually shed? did every shed carry
Retry-After? did any body drift?) and the user's ``--slo`` thresholds
are evaluated into a ``gates`` block whose worst result decides the
process exit code — which is what lets CI fail a PR on a serving
regression without anyone reading the JSON.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

from repro.loadgen.metrics import PhaseMetrics

__all__ = [
    "LOADGEN_SCHEMA_VERSION",
    "GateResult",
    "SloThresholds",
    "build_report",
    "loadgen_path",
    "write_report",
]

#: Layout version of the LOADGEN JSON document.
LOADGEN_SCHEMA_VERSION = 1

#: SLO keys ``--slo`` accepts, mapped to how the threshold is compared.
#: All are "measured must be <= threshold" except availability, which is
#: "measured must be >= threshold".
_SLO_KEYS = ("p99_ms", "p999_ms", "shed_rate", "error_rate", "availability", "body_drift")


@dataclass(frozen=True)
class GateResult:
    """One evaluated gate: what was required, what was measured."""

    name: str
    passed: bool
    measured: float
    threshold: float
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "passed": self.passed,
            "measured": round(self.measured, 6),
            "threshold": self.threshold,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class SloThresholds:
    """Parsed ``--slo`` thresholds; None means "not gated".

    ``p99_ms``/``p999_ms``/``shed_rate``/``error_rate``/``body_drift``
    are ceilings; ``availability`` is a floor.
    """

    p99_ms: Optional[float] = None
    p999_ms: Optional[float] = None
    shed_rate: Optional[float] = None
    error_rate: Optional[float] = None
    availability: Optional[float] = None
    body_drift: Optional[float] = None

    @classmethod
    def parse(cls, text: Optional[str]) -> "SloThresholds":
        """Parse ``p99_ms=750,shed_rate=0.25,error_rate=0.01`` syntax."""
        if not text:
            return cls()
        values: Dict[str, float] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"SLO entry {part!r} is not key=value")
            key, _, raw = part.partition("=")
            key = key.strip()
            if key not in _SLO_KEYS:
                raise ValueError(
                    f"unknown SLO key {key!r}; expected one of {list(_SLO_KEYS)}"
                )
            try:
                values[key] = float(raw)
            except ValueError:
                raise ValueError(f"SLO value {raw!r} for {key} is not a number") from None
        return cls(**values)

    def evaluate(self, steady: PhaseMetrics, totals: PhaseMetrics) -> List[GateResult]:
        """Gate the *steady* phase's latency/rates and the run-wide drift.

        Latency and rate SLOs are judged against the steady phase — the
        saturation phase exists to provoke shedding, so folding its
        numbers in would make every threshold meaningless.  Body drift
        is judged run-wide: drift is never acceptable, not even while
        saturated.
        """
        gates: List[GateResult] = []
        latency = {
            "p99_ms": steady.latency.quantile(0.99) * 1000.0,
            "p999_ms": steady.latency.quantile(0.999) * 1000.0,
        }
        for key in ("p99_ms", "p999_ms"):
            threshold = getattr(self, key)
            if threshold is not None:
                measured = latency[key]
                gates.append(GateResult(
                    name=f"slo.{key}",
                    passed=measured <= threshold,
                    measured=measured,
                    threshold=threshold,
                    detail=f"steady-phase {key}",
                ))
        for key, measured in (
            ("shed_rate", steady.shed_rate),
            ("error_rate", steady.error_rate),
        ):
            threshold = getattr(self, key)
            if threshold is not None:
                gates.append(GateResult(
                    name=f"slo.{key}",
                    passed=measured <= threshold,
                    measured=measured,
                    threshold=threshold,
                    detail=f"steady-phase {key}",
                ))
        if self.availability is not None:
            gates.append(GateResult(
                name="slo.availability",
                passed=steady.availability >= self.availability,
                measured=steady.availability,
                threshold=self.availability,
                detail="steady-phase ok over non-shed",
            ))
        if self.body_drift is not None:
            gates.append(GateResult(
                name="slo.body_drift",
                passed=totals.body_drift <= self.body_drift,
                measured=float(totals.body_drift),
                threshold=self.body_drift,
                detail="run-wide golden-body mismatches",
            ))
        return gates


def build_report(
    *,
    seed: int,
    target: str,
    mode: str,
    phases: Sequence[PhaseMetrics],
    gates: Sequence[GateResult],
    schedule_digests: Sequence[Mapping[str, object]],
    catalog: Mapping[str, object],
    tracer_counters: Optional[Mapping[str, float]] = None,
    slo: Optional[SloThresholds] = None,
    extra: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Assemble the canonical LOADGEN document.

    ``phases`` are reported in run order; ``totals`` is their merge
    (exercising histogram merge on every run).  The ``determinism``
    block carries per-persona schedule digests — two runs with the same
    seed must produce byte-identical digests, and the acceptance test
    holds the harness to it.
    """
    totals = PhaseMetrics("totals")
    for phase in phases:
        totals.merge(phase)
    report: Dict[str, object] = {
        "loadgen_schema_version": LOADGEN_SCHEMA_VERSION,
        "date": time.strftime("%Y%m%d"),
        "seed": int(seed),
        "target": target,
        "mode": mode,
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count() or 1,
        },
        "catalog": dict(catalog),
        "phases": [phase.to_dict() for phase in phases],
        "totals": totals.to_dict(),
        "gates": {
            "passed": all(gate.passed for gate in gates),
            "results": [gate.to_dict() for gate in gates],
        },
        "slo": (
            {
                key: getattr(slo, key)
                for key in _SLO_KEYS
                if getattr(slo, key) is not None
            }
            if slo is not None
            else {}
        ),
        "determinism": {
            "schedule_digest_prefix": 64,
            "personas": [dict(digest) for digest in schedule_digests],
        },
        "tracer": dict(sorted((tracer_counters or {}).items())),
    }
    if extra:
        report.update(dict(extra))
    return report


def loadgen_path(out_dir: os.PathLike = ".", date: Optional[str] = None) -> Path:
    """The canonical output path: ``<out_dir>/LOADGEN_<yyyymmdd>.json``."""
    stamp = date if date is not None else time.strftime("%Y%m%d")
    return Path(os.fspath(out_dir)) / f"LOADGEN_{stamp}.json"


def write_report(payload: Dict[str, object], path: os.PathLike) -> Path:
    """Write a LOADGEN document as stable (sorted-key) indented JSON."""
    target = Path(os.fspath(path))
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target
