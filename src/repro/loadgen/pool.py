"""The multi-process client pool: scaling offered load past one core.

One asyncio process tops out at a few hundred requests/sec against a
local service — enough to exercise the admission gate, not enough to
*saturate* it with headroom.  ``repro loadgen --workers N`` forks N
client processes; each runs the unchanged :class:`LoadEngine` over a
deterministic **shard** of every phase's persona roster
(``position % worker_count == worker_index``), so the union of what the
workers request is exactly what a single process would have requested —
sharding changes who sends, never what is sent (the seed-partition
equivalence test pins this).

Each worker writes its results to a **spill file**: exact counters plus
full log-bucketed histograms (:meth:`PhaseMetrics.to_spill`), which were
built to merge.  The parent folds the spills into one set of phase
metrics — bucket addition is associative and commutative, so the merged
quantiles are identical to having recorded every outcome in one process
— and reports them through the same LOADGEN document and gates as a
single-process run.

Workers are started with the ``spawn`` context: the parent may hold
live threads (the tracer, a spawned serve child's pipe) and forking a
threaded process is how deadlocks are born.
"""

from __future__ import annotations

import json
import math
import multiprocessing
import os
import sys
import tempfile
import time
import traceback
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.loadgen.engine import ClientStats, LoadEngine, PhaseSpec
from repro.loadgen.engine import _PHASE_OVERRUN_FACTOR
from repro.loadgen.metrics import PhaseMetrics
from repro.loadgen.personas import Catalog

__all__ = ["PoolResult", "WorkerSpec", "run_pool", "shard_phase", "worker_main"]

#: Extra wall-clock slack (seconds) on top of the phases' own hard
#: deadlines before the parent declares a worker wedged.  Spawn-context
#: interpreter startup and module import land in here.
_JOIN_SLACK_SECONDS = 60.0

#: Layout version of the per-worker spill document.
WORKER_SPILL_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class WorkerSpec:
    """Everything one worker process needs (picklable for ``spawn``)."""

    worker_index: int
    worker_count: int
    host: str
    port: int
    seed: int
    catalog: Catalog
    phases: Tuple[PhaseSpec, ...]
    spill_path: str
    expectations: Optional[Mapping[str, bytes]] = None
    timeout: float = 5.0
    keepalive: bool = True


@dataclass
class PoolResult:
    """Merged output of a pooled run — shaped like one engine's output."""

    phases: List[PhaseMetrics]
    schedule_digests: List[Dict[str, object]]
    counters: Dict[str, float]
    client: ClientStats
    workers: int
    spill_dir: str


def shard_phase(spec: PhaseSpec, worker_index: int, worker_count: int) -> PhaseSpec:
    """The phase as worker ``worker_index`` of ``worker_count`` runs it.

    Persona count and ids are untouched — the shard fields make the
    engine keep only its slice of the canonical roster.  ``min_requests``
    is divided (ceiling) so the *fleet* still guarantees the original
    volume without each worker waiting for all of it.
    """
    return replace(
        spec,
        shard_index=worker_index,
        shard_count=worker_count,
        min_requests=math.ceil(spec.min_requests / worker_count),
    )


def worker_main(spec: WorkerSpec) -> None:
    """One worker process: run every phase over this shard, spill, exit.

    Never raises: failures are written into the spill file (an ``error``
    payload) and reflected in the exit code, so the parent can report
    what actually went wrong instead of a bare nonzero exit.
    """
    try:
        tracer = obs.Tracer()
        engine = LoadEngine(
            spec.host,
            spec.port,
            spec.catalog,
            spec.seed,
            expectations=spec.expectations,
            tracer=tracer,
            timeout=spec.timeout,
            keepalive=spec.keepalive,
        )
        spills: List[Dict[str, object]] = []
        for phase in spec.phases:
            metrics = engine.run_phase(
                shard_phase(phase, spec.worker_index, spec.worker_count)
            )
            spills.append(metrics.to_spill())
        with tracer._root_lock:
            counters = dict(tracer.root.counters)
        payload: Dict[str, object] = {
            "worker_spill_schema_version": WORKER_SPILL_SCHEMA_VERSION,
            "worker": spec.worker_index,
            "workers": spec.worker_count,
            "phases": spills,
            "digests": engine.schedule_digests(),
            "counters": counters,
            "client": engine.client_stats.to_dict(),
        }
        _write_spill(spec.spill_path, payload)
    except BaseException:
        _write_spill(spec.spill_path, {
            "worker_spill_schema_version": WORKER_SPILL_SCHEMA_VERSION,
            "worker": spec.worker_index,
            "workers": spec.worker_count,
            "error": traceback.format_exc(),
        })
        sys.exit(1)


def _write_spill(path: str, payload: Dict[str, object]) -> None:
    """Write-then-rename so the parent never reads a torn spill."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    scratch = target.with_suffix(".tmp")
    scratch.write_text(json.dumps(payload, sort_keys=True))
    os.replace(scratch, target)


def run_pool(
    host: str,
    port: int,
    catalog: Catalog,
    seed: int,
    phases: Sequence[PhaseSpec],
    *,
    workers: int,
    expectations: Optional[Mapping[str, bytes]] = None,
    timeout: float = 5.0,
    keepalive: bool = True,
    spill_dir: Optional[str] = None,
    mp_context: str = "spawn",
) -> PoolResult:
    """Run ``phases`` across ``workers`` processes and merge the spills.

    Raises:
        ValueError: ``workers < 1`` or no phases.
        RuntimeError: a worker died, wedged past its phase deadlines, or
          spilled an error payload.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if not phases:
        raise ValueError("run_pool needs at least one phase")
    directory = spill_dir or tempfile.mkdtemp(prefix="repro-loadgen-pool-")
    Path(directory).mkdir(parents=True, exist_ok=True)
    context = multiprocessing.get_context(mp_context)
    specs = [
        WorkerSpec(
            worker_index=index,
            worker_count=workers,
            host=host,
            port=port,
            seed=seed,
            catalog=catalog,
            phases=tuple(phases),
            spill_path=str(Path(directory) / f"worker_{index}.json"),
            expectations=dict(expectations or {}),
            timeout=timeout,
            keepalive=keepalive,
        )
        for index in range(workers)
    ]
    processes = [
        context.Process(target=worker_main, args=(spec,), name=f"loadgen-w{spec.worker_index}")
        for spec in specs
    ]
    for process in processes:
        process.start()
    budget = sum(
        spec.duration_seconds * _PHASE_OVERRUN_FACTOR for spec in phases
    ) + _JOIN_SLACK_SECONDS
    deadline = time.monotonic() + budget
    wedged: List[int] = []
    for index, process in enumerate(processes):
        process.join(timeout=max(0.0, deadline - time.monotonic()))
        if process.is_alive():
            process.terminate()
            process.join(timeout=5.0)
            wedged.append(index)
    if wedged:
        raise RuntimeError(
            f"loadgen worker(s) {wedged} still running after {budget:.0f}s; "
            "terminated"
        )
    spills = [_read_spill(spec) for spec in specs]
    return _merge_spills(spills, workers=workers, spill_dir=directory)


def _read_spill(spec: WorkerSpec) -> Dict[str, object]:
    path = Path(spec.spill_path)
    if not path.exists():
        raise RuntimeError(
            f"worker {spec.worker_index} exited without writing its spill "
            f"({path})"
        )
    payload = json.loads(path.read_text())
    if payload.get("worker_spill_schema_version") != WORKER_SPILL_SCHEMA_VERSION:
        raise RuntimeError(
            f"worker {spec.worker_index} spilled schema "
            f"{payload.get('worker_spill_schema_version')!r}; expected "
            f"{WORKER_SPILL_SCHEMA_VERSION}"
        )
    if "error" in payload:
        raise RuntimeError(
            f"worker {spec.worker_index} failed:\n{payload['error']}"
        )
    return payload


def _merge_spills(
    spills: Sequence[Dict[str, object]], *, workers: int, spill_dir: str
) -> PoolResult:
    """Fold per-worker spills into one engine's worth of results.

    Histograms and counters add; phase ``duration_seconds`` is the
    *maximum* across workers, not the sum — the workers ran concurrently,
    and throughput must be requests over wall time, not over CPU time.
    """
    phase_count = len(spills[0]["phases"])  # type: ignore[arg-type]
    merged_phases: List[PhaseMetrics] = []
    for position in range(phase_count):
        shards = [
            PhaseMetrics.from_spill(spill["phases"][position])  # type: ignore[index]
            for spill in spills
        ]
        wall = max(shard.duration_seconds for shard in shards)
        merged = shards[0]
        for shard in shards[1:]:
            merged.merge(shard)
        merged.duration_seconds = wall
        merged_phases.append(merged)
    digests: List[Dict[str, object]] = []
    for spill in spills:
        digests.extend(dict(d) for d in spill.get("digests", []))
    digests.sort(key=lambda digest: str(digest.get("persona", "")))
    counters: Dict[str, float] = {}
    for spill in spills:
        for name, value in dict(spill.get("counters", {})).items():
            counters[name] = counters.get(name, 0.0) + float(value)
    client = ClientStats()
    for spill in spills:
        client.merge(ClientStats.from_dict(dict(spill.get("client", {}))))
    return PoolResult(
        phases=merged_phases,
        schedule_digests=digests,
        counters=counters,
        client=client,
        workers=workers,
        spill_dir=spill_dir,
    )
