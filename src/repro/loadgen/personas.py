"""Deterministic client personas for the load harness.

A load test is only a regression gate if two runs with the same seed
issue the same requests; otherwise a latency or correctness change can
hide behind schedule noise.  So personas here draw every decision —
which dashboard to poll, how long to think, which experiment to page —
from a :class:`HashStream`: a counter-mode sha256 stream keyed by
``(seed, persona tag)``.  No ``random`` module, no wall clock; the
request *schedule* is a pure function of the seed, and each persona
publishes a ``schedule_digest`` over its first planned paths so the
report (and the determinism test) can prove it.

Three personas model the service's real client mix:

* :class:`DashboardPoller` — a wallboard refreshing a small watchlist of
  ``/v1/lists/<provider>/<day>?k=`` panels; provider/day/k choices are
  Zipf-skewed (a few popular panels dominate, the tail is long), which
  is what actually stresses the last-known-good cache.  Panel polls are
  *conditional* (the engine revalidates with ``If-None-Match``) and a
  bounded set of day-pair diff views joins the rotation.
* :class:`Researcher` — pages full ``/v1/experiments/<name>`` bodies in
  a seed-shuffled order with longer think times, occasionally re-reading
  the index; the heavy-body, low-rate shape.
* :class:`HealthProbe` — an orchestrator's liveness loop over
  ``/healthz`` / ``/readyz`` / ``/metricz``.

Every persona also *validates* each response body it receives, so the
harness catches semantic regressions (wrong ``count``, missing fields)
that a status-code-only load tool would wave through.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Catalog",
    "DashboardPoller",
    "HashStream",
    "HealthProbe",
    "PERSONA_KINDS",
    "PlannedRequest",
    "Persona",
    "Researcher",
    "apportion",
    "make_persona",
    "parse_mix",
    "roster",
    "validate_data_health",
]

#: Persona kinds in mix-spec order; also the default mix weights.
PERSONA_KINDS = ("dashboards", "researchers", "probes")

DEFAULT_MIX = {"dashboards": 0.7, "researchers": 0.2, "probes": 0.1}

#: How many planned paths feed each persona's schedule digest.
SCHEDULE_DIGEST_PREFIX = 64

#: k values a dashboard panel can ask for (mirrors common UI presets).
_K_MENU = (10, 25, 50, 100, 250, 500)

#: Per-provider resolutions a list body's ``data_health`` may report.
_DATA_HEALTH_STATUSES = (
    "clean", "repaired", "carried_forward", "unrecoverable", "retired",
)


def validate_data_health(health: object) -> Optional[str]:
    """Shape-check a list body's ``data_health`` block.

    Returns an error string (None when valid).  Shared between the
    dashboard persona and the chaos-data driver: a server running under
    data chaos must never emit a half-formed health block, because
    consumers key cache and alerting decisions off it.
    """
    if not isinstance(health, dict):
        return f"data_health must be an object, got {type(health).__name__}"
    degraded = health.get("degraded")
    if not isinstance(degraded, bool):
        return f"data_health.degraded must be a boolean, got {degraded!r}"
    status = health.get("status")
    if status not in _DATA_HEALTH_STATUSES:
        return f"data_health.status invalid: {status!r}"
    if status == "clean" and degraded:
        return "data_health says degraded but status is clean"
    if status != "clean" and not degraded:
        return f"data_health.status {status!r} but degraded is false"
    staleness = health.get("staleness")
    if not isinstance(staleness, int) or isinstance(staleness, bool) or staleness < 0:
        return f"data_health.staleness must be a non-negative int, got {staleness!r}"
    if status in ("carried_forward", "unrecoverable", "retired") and staleness < 1:
        return f"data_health.status {status!r} requires staleness >= 1"
    for key in ("reasons", "repairs"):
        if not isinstance(health.get(key), list):
            return f"data_health.{key} missing or not a list"
    return None


class HashStream:
    """A deterministic decision stream: sha256 in counter mode.

    Every draw hashes ``"{seed}:{tag}:{counter}"`` and interprets the
    first 8 digest bytes as a uniform 64-bit integer.  Identical
    ``(seed, tag)`` pairs replay identical streams on any platform,
    which is the whole point.
    """

    def __init__(self, seed: int, tag: str) -> None:
        self.seed = int(seed)
        self.tag = tag
        self._counter = 0

    def _draw(self) -> int:
        digest = hashlib.sha256(
            f"{self.seed}:{self.tag}:{self._counter}".encode("utf-8")
        ).digest()
        self._counter += 1
        return int.from_bytes(digest[:8], "big")

    def unit(self) -> float:
        """Uniform float in [0, 1)."""
        return self._draw() / 2**64

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        return low + self._draw() % (high - low + 1)

    def choice(self, items: Sequence) -> object:
        """Uniform choice from a non-empty sequence."""
        if not items:
            raise ValueError("choice from empty sequence")
        return items[self._draw() % len(items)]

    def zipf_choice(self, items: Sequence, s: float = 1.1) -> object:
        """Zipf-skewed choice: item ``i`` has weight ``1 / (i + 1)**s``.

        Earlier items are hot; the tail stays reachable.  Pure python —
        no numpy — because the draw count here is tiny.
        """
        if not items:
            raise ValueError("zipf_choice from empty sequence")
        weights = [1.0 / (i + 1) ** s for i in range(len(items))]
        total = sum(weights)
        point = self.unit() * total
        acc = 0.0
        for item, weight in zip(items, weights):
            acc += weight
            if point < acc:
                return item
        return items[-1]


@dataclass(frozen=True)
class Catalog:
    """What the target service offers — discovered from ``/v1/lists``
    and ``/v1/experiments`` (or pinned by a test)."""

    providers: Tuple[str, ...]
    days: int
    experiments: Tuple[str, ...]
    default_k: int = 100
    max_k: int = 1000


@dataclass(frozen=True)
class PlannedRequest:
    """One scheduled request: the path, what kind of body to expect,
    and how long the persona thinks before issuing it.

    ``conditional`` marks requests the client should revalidate instead
    of re-downloading: the engine attaches ``If-None-Match`` with the
    ETag it remembers for the path (when it has one), and a 304 counts
    as a successful, body-less outcome.
    """

    path: str
    kind: str  # lists | lists-diff | lists-index | experiment | experiments-index | health | metricz
    think_seconds: float
    persona_id: str
    conditional: bool = False


class Persona:
    """Base persona: a deterministic request planner plus a validator.

    Subclasses implement :meth:`_plan` (the next request) and
    :meth:`validate` (semantic checks on a 200 body).  The base class
    tracks the schedule digest: a sha256 over the first
    ``SCHEDULE_DIGEST_PREFIX`` planned paths, proving determinism.
    """

    kind = "persona"

    def __init__(self, persona_id: str, seed: int, catalog: Catalog) -> None:
        self.persona_id = persona_id
        self.seed = int(seed)
        self.catalog = catalog
        self.stream = HashStream(seed, persona_id)
        self._planned = 0

    def next_request(self) -> PlannedRequest:
        """Plan the next request."""
        request = self._plan()
        self._planned += 1
        return request

    def _plan(self) -> PlannedRequest:
        raise NotImplementedError

    def schedule_digest(self) -> Dict[str, object]:
        """The determinism fingerprint for the report.

        Hashes the first :data:`SCHEDULE_DIGEST_PREFIX` paths a *freshly
        reconstructed* twin of this persona plans, so the digest depends
        only on ``(class, persona_id, seed, catalog)`` — never on how
        many requests this run actually got through.  Two runs with the
        same seed must produce byte-identical digests; the acceptance
        test holds the harness to it.
        """
        twin = type(self)(self.persona_id, self.seed, self.catalog)
        digest = hashlib.sha256()
        for _ in range(SCHEDULE_DIGEST_PREFIX):
            digest.update(twin._plan().path.encode("utf-8"))
            digest.update(b"\n")
        return {
            "persona": self.persona_id,
            "kind": self.kind,
            "planned": self._planned,
            "prefix": SCHEDULE_DIGEST_PREFIX,
            "sha256": digest.hexdigest(),
        }

    def validate(self, request: PlannedRequest, body: dict) -> Optional[str]:
        """None when the 200 body is semantically sound, else a reason."""
        raise NotImplementedError


class DashboardPoller(Persona):
    """A wallboard polling a small Zipf-skewed watchlist of top-k panels.

    The watchlist is fixed at construction (2-4 panels) so the persona
    hammers a *bounded* set of distinct paths — that is what makes the
    last-known-good cache and the per-key fault windows meaningful, and
    it keeps the chaos phase's injected-error surface proportional to
    panels, not to requests.

    Real wallboards revalidate instead of re-downloading, so every panel
    poll is marked ``conditional`` (the engine sends ``If-None-Match``
    once it has seen the panel's ETag), and — when the catalog spans at
    least two days — a bounded set of day-pair *diff* views
    (``/v1/lists/<provider>/diff?from=&to=``) joins the rotation at
    roughly one request in five, exercising the rank-delta surface under
    load without unbounding the distinct-path set.
    """

    kind = "dashboards"

    def __init__(self, persona_id: str, seed: int, catalog: Catalog) -> None:
        super().__init__(persona_id, seed, catalog)
        if not catalog.providers or catalog.days < 1:
            raise ValueError("dashboard persona needs providers and days")
        k_menu = [k for k in _K_MENU if k <= catalog.max_k] or [catalog.default_k]
        panels = self.stream.randint(2, min(4, max(2, len(catalog.providers) * catalog.days)))
        watchlist: List[Tuple[str, int, int]] = []
        seen = set()
        while len(watchlist) < panels:
            provider = self.stream.zipf_choice(catalog.providers)
            day = self.stream.zipf_choice(tuple(range(catalog.days)))
            k = self.stream.zipf_choice(k_menu)
            panel = (provider, day, k)
            if panel in seen:
                # Deterministic retry; the stream advances, so this
                # terminates (panel space >= 2 by the randint bound).
                continue
            seen.add(panel)
            watchlist.append(panel)
        self.watchlist = tuple(watchlist)
        diff_pairs: List[Tuple[str, int, int, int]] = []
        if catalog.days >= 2:
            wanted = self.stream.randint(1, 2)
            chosen = set()
            # Bounded attempts: with a tiny (provider, day-pair, k) space
            # the dedupe could otherwise spin forever.
            for _ in range(wanted * 4):
                if len(diff_pairs) >= wanted:
                    break
                provider = self.stream.zipf_choice(catalog.providers)
                a = self.stream.randint(0, catalog.days - 1)
                b = self.stream.randint(0, catalog.days - 2)
                if b >= a:
                    b += 1
                spec = (provider, min(a, b), max(a, b), self.stream.zipf_choice(k_menu))
                if spec in chosen:
                    continue
                chosen.add(spec)
                diff_pairs.append(spec)
        self.diff_pairs = tuple(diff_pairs)

    def _plan(self) -> PlannedRequest:
        think = 0.02 + 0.06 * self.stream.unit()
        if self.diff_pairs and self.stream.unit() < 0.2:
            provider, from_day, to_day, k = self.stream.zipf_choice(self.diff_pairs)
            return PlannedRequest(
                path=f"/v1/lists/{provider}/diff?from={from_day}&to={to_day}&k={k}",
                kind="lists-diff",
                think_seconds=think,
                persona_id=self.persona_id,
                conditional=True,
            )
        provider, day, k = self.stream.zipf_choice(self.watchlist)
        return PlannedRequest(
            path=f"/v1/lists/{provider}/{day}?k={k}",
            kind="lists",
            think_seconds=think,
            persona_id=self.persona_id,
            conditional=True,
        )

    def validate(self, request: PlannedRequest, body: dict) -> Optional[str]:
        if request.kind == "lists-diff":
            return self._validate_diff(request, body)
        query = request.path.split("?k=", 1)
        k = int(query[1]) if len(query) == 2 else self.catalog.default_k
        _, provider, day_text = request.path.split("?", 1)[0].rsplit("/", 2)
        if body.get("provider") != provider:
            return f"provider mismatch: {body.get('provider')!r} != {provider!r}"
        if body.get("day") != int(day_text):
            return f"day mismatch: {body.get('day')!r} != {day_text}"
        if body.get("k") != k:
            return f"k mismatch: {body.get('k')!r} != {k}"
        names = body.get("names")
        if not isinstance(names, list):
            return "names missing or not a list"
        count = body.get("count")
        if count != len(names):
            return f"count {count!r} != len(names) {len(names)}"
        if count > k:
            return f"count {count} exceeds requested k {k}"
        health = body.get("data_health")
        if health is not None:
            # Only present when the server runs under data chaos; a
            # wallboard must reject a half-formed health block rather
            # than render stale ranks as fresh.
            return validate_data_health(health)
        return None

    def _validate_diff(self, request: PlannedRequest, body: dict) -> Optional[str]:
        provider = request.path[len("/v1/lists/"):].split("/", 1)[0]
        query = request.path.split("?", 1)[1]
        params = dict(part.split("=", 1) for part in query.split("&"))
        if body.get("provider") != provider:
            return f"provider mismatch: {body.get('provider')!r} != {provider!r}"
        if body.get("from") != int(params["from"]):
            return f"from mismatch: {body.get('from')!r} != {params['from']}"
        if body.get("to") != int(params["to"]):
            return f"to mismatch: {body.get('to')!r} != {params['to']}"
        k = int(params["k"])
        if body.get("k") != k:
            return f"k mismatch: {body.get('k')!r} != {k}"
        for key in ("entrants", "dropouts", "moved"):
            rows = body.get(key)
            if not isinstance(rows, list):
                return f"{key} missing or not a list"
        unchanged = body.get("unchanged")
        if not isinstance(unchanged, int) or unchanged < 0:
            return f"unchanged malformed: {unchanged!r}"
        for row in body["entrants"]:
            rank = row.get("rank")
            if not isinstance(rank, int) or not 1 <= rank <= k:
                return f"entrant rank out of bounds: {rank!r}"
        for row in body["moved"]:
            if row.get("delta") != row.get("from_rank", 0) - row.get("to_rank", 0):
                return "moved delta inconsistent with from_rank/to_rank"
        return None


class Researcher(Persona):
    """Pages whole experiment result bodies, slowly and exhaustively.

    Walks the catalog's experiments in a seed-shuffled cycle; roughly
    one request in eight re-reads the ``/v1/experiments`` index (the
    'what changed?' reflex).  Think times are an order of magnitude
    longer than a dashboard's.
    """

    kind = "researchers"

    def __init__(self, persona_id: str, seed: int, catalog: Catalog) -> None:
        super().__init__(persona_id, seed, catalog)
        if not catalog.experiments:
            raise ValueError("researcher persona needs experiments")
        order = list(catalog.experiments)
        # Fisher-Yates off the deterministic stream.
        for i in range(len(order) - 1, 0, -1):
            j = self.stream.randint(0, i)
            order[i], order[j] = order[j], order[i]
        self._order = tuple(order)
        self._cursor = 0

    def _plan(self) -> PlannedRequest:
        think = 0.1 + 0.2 * self.stream.unit()
        if self.stream.unit() < 0.125:
            return PlannedRequest(
                path="/v1/experiments",
                kind="experiments-index",
                think_seconds=think,
                persona_id=self.persona_id,
            )
        name = self._order[self._cursor % len(self._order)]
        self._cursor += 1
        return PlannedRequest(
            path=f"/v1/experiments/{name}",
            kind="experiment",
            think_seconds=think,
            persona_id=self.persona_id,
        )

    def validate(self, request: PlannedRequest, body: dict) -> Optional[str]:
        if request.kind == "experiments-index":
            rows = body.get("experiments")
            if not isinstance(rows, list) or not rows:
                return "experiments index empty or malformed"
            for row in rows:
                if "id" not in row or "status" not in row:
                    return "experiments index row missing id/status"
            return None
        name = request.path.rsplit("/", 1)[1]
        if body.get("name") not in (None, name) and body.get("experiment") not in (None, name):
            return f"body names {body.get('name')!r}, expected {name!r}"
        if "schema_version" not in body:
            return "experiment body missing schema_version"
        return None


class HealthProbe(Persona):
    """An orchestrator's health loop: healthz, readyz, then metricz."""

    kind = "probes"

    _ROTATION = (
        ("/healthz", "health"),
        ("/readyz", "health"),
        ("/metricz", "metricz"),
    )

    def __init__(self, persona_id: str, seed: int, catalog: Catalog) -> None:
        super().__init__(persona_id, seed, catalog)
        self._cursor = self.stream.randint(0, len(self._ROTATION) - 1)

    def _plan(self) -> PlannedRequest:
        path, kind = self._ROTATION[self._cursor % len(self._ROTATION)]
        self._cursor += 1
        return PlannedRequest(
            path=path,
            kind=kind,
            think_seconds=0.05 + 0.05 * self.stream.unit(),
            persona_id=self.persona_id,
        )

    def validate(self, request: PlannedRequest, body: dict) -> Optional[str]:
        if request.kind == "health":
            status = body.get("status")
            if status not in ("alive", "ready"):
                return f"unexpected health status {status!r}"
            return None
        if "requests" not in body or "uptime_seconds" not in body:
            return "metricz body missing requests/uptime_seconds"
        return None


_PERSONA_CLASSES = {
    "dashboards": DashboardPoller,
    "researchers": Researcher,
    "probes": HealthProbe,
}


def make_persona(kind: str, persona_id: str, seed: int, catalog: Catalog) -> Persona:
    """Construct a persona by mix-spec kind."""
    try:
        cls = _PERSONA_CLASSES[kind]
    except KeyError:
        raise ValueError(
            f"unknown persona kind {kind!r}; expected one of {sorted(_PERSONA_CLASSES)}"
        ) from None
    return cls(persona_id, seed, catalog)


def parse_mix(text: Optional[str]) -> Dict[str, float]:
    """Parse ``dashboards=0.7,researchers=0.2,probes=0.1`` into weights.

    Weights are normalized to sum to 1; omitted kinds get weight 0; an
    empty/None spec yields :data:`DEFAULT_MIX`.
    """
    if not text:
        return dict(DEFAULT_MIX)
    weights: Dict[str, float] = {kind: 0.0 for kind in PERSONA_KINDS}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"mix entry {part!r} is not kind=weight")
        kind, _, raw = part.partition("=")
        kind = kind.strip()
        if kind not in weights:
            raise ValueError(
                f"unknown persona kind {kind!r}; expected one of {list(PERSONA_KINDS)}"
            )
        try:
            weight = float(raw)
        except ValueError:
            raise ValueError(f"mix weight {raw!r} is not a number") from None
        if weight < 0:
            raise ValueError(f"mix weight for {kind} must be >= 0, got {weight}")
        weights[kind] = weight
    total = sum(weights.values())
    if total <= 0:
        raise ValueError(f"mix {text!r} has no positive weight")
    return {kind: weight / total for kind, weight in weights.items()}


def roster(phase: str, workers: int, mix: Dict[str, float]) -> List[Tuple[str, str]]:
    """The canonical ``(kind, persona_id)`` list for one phase.

    This is the single definition of which persona sessions a phase
    consists of and in what order — shared by the in-process engine and
    the multi-process pool, which shards it by position.  Because every
    persona's request stream is keyed by ``(seed, persona_id)``, two
    engines holding disjoint slices of this roster issue disjoint,
    deterministic subsets of exactly the requests the unsharded engine
    would have issued (the seed-partition equivalence test pins this).
    """
    counts = apportion(workers, mix)
    entries: List[Tuple[str, str]] = []
    for kind in sorted(counts):
        for index in range(counts[kind]):
            entries.append((kind, f"{phase}:{kind}:{index}"))
    return entries


def apportion(workers: int, mix: Dict[str, float]) -> Dict[str, int]:
    """Split ``workers`` across persona kinds by largest remainder.

    Every kind with positive weight gets at least the rounding allows;
    the result always sums to exactly ``workers``.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    quotas = {kind: workers * mix.get(kind, 0.0) for kind in PERSONA_KINDS}
    counts = {kind: int(quota) for kind, quota in quotas.items()}
    short = workers - sum(counts.values())
    remainders = sorted(
        PERSONA_KINDS,
        key=lambda kind: (quotas[kind] - counts[kind], mix.get(kind, 0.0)),
        reverse=True,
    )
    for kind in remainders[:short]:
        counts[kind] += 1
    return counts
