"""The asyncio load engine: open-loop pacing, closed-loop sessions.

Everything here is stdlib.  The HTTP client is a deliberately small
raw-socket HTTP/1.1 GET over :func:`asyncio.open_connection` — no
aiohttp in the image, and ``urllib`` would serialize on threads; a load
generator must not have its own concurrency ceiling below the service's.

Connections are **persistent** by default: each phase owns a
:class:`ConnectionPool` of keep-alive HTTP/1.1 sockets, so the cost of
a TCP handshake is paid per *session*, not per request — the difference
between a client that tops out at a few hundred requests/sec and one
that can actually saturate the serve layer.  The pool handles the two
ways a peer ends persistence: a ``Connection: close`` response header
retires the socket after the body, and a server-initiated close between
requests (EOF on a reused socket before any response byte) triggers a
transparent reconnect, never a failed sample.  ``keepalive=False``
falls back to the PR 6 one-socket-per-request client
(:func:`http_get`) for A/B measurements.

Two driving modes, because they answer different questions:

* **closed loop** — N worker sessions, each running one persona:
  request, validate, think, repeat.  Offered load adapts to service
  speed; this is how you find the saturation knee (enough workers with
  zero think time *will* trip the admission gate).
* **open loop** — a token bucket refilled at ``rate`` req/s hands
  tokens to a worker pool; offered load is constant regardless of how
  slow the service gets, which is the honest way to measure latency at
  a fixed arrival rate (no coordinated omission).

Retries reuse :class:`repro.runner.retry.RetryPolicy` — the same
deterministic hash-jittered backoff the experiment runner uses — and
honor ``Retry-After`` on 503/504: the sleep is
``max(policy_backoff, min(retry_after, cap))``, and the engine counts
every 503/504 that *failed* to carry a parseable Retry-After, which the
harness gates at zero (the serve-side satellite's contract).

The engine is also an honest *cache-validating* client: every 200
response's ``ETag`` is remembered per path (bounded), and a planned
request marked ``conditional`` resends it as ``If-None-Match``.  A 304
answer is the ``not_modified`` outcome — a success with an empty body,
exempt from golden pinning and semantic validation (there is no body to
check; the ETag match *is* the check).  Servers that never emit ETags
(the conformance stubs) see no ``If-None-Match`` and no behavior
change.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.loadgen.metrics import Outcome, PhaseMetrics
from repro.loadgen.personas import (
    Catalog,
    Persona,
    PlannedRequest,
    make_persona,
    roster,
)
from repro.runner.retry import RetryPolicy

__all__ = [
    "ClientStats",
    "ConnectionPool",
    "GarbledResponse",
    "HttpResponse",
    "LoadEngine",
    "PhaseSpec",
    "StaleRetriesExhausted",
    "TokenBucket",
    "TransportError",
    "TruncatedBody",
    "discover_catalog",
    "http_get",
]

#: Never sleep longer than this on a single Retry-After, no matter what
#: the server claims — a load test has a schedule to keep.
RETRY_AFTER_SLEEP_CAP = 2.0

#: A phase may overrun its nominal duration by at most this factor
#: before the engine bails out (a wedged server must not hang CI).
_PHASE_OVERRUN_FACTOR = 5.0

#: Per-path ETags remembered for conditional GETs (LRU-bounded so a
#: long run over a huge URL space cannot grow the cache without limit).
_ETAG_CACHE_CAPACITY = 512


class TransportError(OSError):
    """Base for classified transport-layer failures.

    An :class:`OSError` subclass so callers that only know the PR 6
    contract ("connect/reset failures raise OSError") keep working; the
    engine's retry loop looks at the subclass to classify.
    """


class TruncatedBody(TransportError):
    """The peer closed before delivering its declared ``Content-Length``.

    The one failure that must never be returned as a short body: a
    truncated golden artifact that parses as JSON would otherwise slip
    through as body drift — or worse, as a success.
    """

    def __init__(self, expected: int, received: int) -> None:
        super().__init__(
            f"truncated body: got {received} of {expected} declared bytes"
        )
        self.expected = expected
        self.received = received


class GarbledResponse(TransportError):
    """The response's status line did not parse as HTTP."""


class StaleRetriesExhausted(TransportError):
    """The pool's transparent stale-reconnect budget ran out.

    Each stale retry is normally invisible (a keep-alive socket died
    between requests; reopen and go).  A server resetting every new
    socket would make that loop spin forever — the budget turns the
    storm into a classified failure instead.
    """


@dataclass(frozen=True)
class HttpResponse:
    """A fully-read HTTP response (or client-side failure surrogate)."""

    status: int
    headers: Mapping[str, str]
    body: bytes
    latency_seconds: float
    bytes_out: int


def _extra_header_lines(headers: Optional[Mapping[str, str]]) -> str:
    """Render caller-supplied request headers (e.g. ``If-None-Match``)."""
    if not headers:
        return ""
    return "".join(f"{name}: {value}\r\n" for name, value in headers.items())


async def http_get(
    host: str,
    port: int,
    path: str,
    timeout: float = 5.0,
    headers: Optional[Mapping[str, str]] = None,
) -> HttpResponse:
    """One HTTP/1.1 GET with ``Connection: close``; reads the full body.

    Raises:
        asyncio.TimeoutError: the whole exchange exceeded ``timeout``.
        GarbledResponse: the status line did not parse as HTTP.
        TruncatedBody: EOF before ``Content-Length`` bytes arrived.
        asyncio.IncompleteReadError: EOF in the middle of the headers.
        OSError: connect/reset failures.
    """
    extra_lines = _extra_header_lines(headers)

    async def _exchange() -> HttpResponse:
        started = time.perf_counter()
        reader, writer = await asyncio.open_connection(host, port)
        try:
            request = (
                f"GET {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                "User-Agent: repro-loadgen\r\n"
                "Accept: application/json\r\n"
                f"{extra_lines}"
                "Connection: close\r\n"
                "\r\n"
            ).encode("ascii")
            writer.write(request)
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split(" ", 2)
            # The protocol token must be checked too: corruption that
            # clobbers "HTTP" can leave a digit second token behind.
            if (
                len(parts) < 2
                or not parts[0].startswith("HTTP/")
                or not parts[1].isdigit()
            ):
                raise GarbledResponse(
                    f"malformed status line {status_line!r}"
                )
            status = int(parts[1])
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n"):
                    break
                if line == b"":
                    # EOF where a header (or the blank line) belongs is
                    # a dropped connection, never the end of headers —
                    # treating it as such would hand back a body with no
                    # framing at all.
                    raise asyncio.IncompleteReadError(b"", None)
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = headers.get("content-length")
            if length is not None and length.isdigit():
                try:
                    body = await reader.readexactly(int(length))
                except asyncio.IncompleteReadError as exc:
                    raise TruncatedBody(int(length), len(exc.partial)) from exc
            else:
                body = await reader.read()
            return HttpResponse(
                status=status,
                headers=headers,
                body=body,
                latency_seconds=time.perf_counter() - started,
                bytes_out=len(request),
            )
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass

    return await asyncio.wait_for(_exchange(), timeout=timeout)


@dataclass
class ClientStats:
    """Connection-level accounting for the keep-alive client.

    ``connections_opened`` vs ``requests`` is the keep-alive proof: with
    reuse working, sockets stay within a small multiple of the session
    count while requests run to the thousands.
    """

    requests: int = 0
    connections_opened: int = 0
    requests_on_reused: int = 0  # served on an already-open socket
    connections_retired: int = 0  # peer answered ``Connection: close``
    stale_retries: int = 0  # reused socket found dead; reopened quietly
    resets: int = 0  # connection reset / dropped mid-exchange
    stalled: int = 0  # exchange exceeded the client timeout
    garbled: int = 0  # unparseable status line
    truncated: int = 0  # body shorter than its Content-Length

    _FIELDS = (
        "requests", "connections_opened", "requests_on_reused",
        "connections_retired", "stale_retries", "resets", "stalled",
        "garbled", "truncated",
    )

    def merge(self, other: "ClientStats") -> "ClientStats":
        for key in self._FIELDS:
            setattr(self, key, getattr(self, key) + getattr(other, key))
        return self

    def to_dict(self) -> Dict[str, int]:
        return {key: getattr(self, key) for key in self._FIELDS}

    @classmethod
    def from_dict(cls, payload: Mapping[str, int]) -> "ClientStats":
        return cls(**{
            key: int(payload.get(key, 0)) for key in cls._FIELDS
        })


class _StaleConnection(Exception):
    """A reused socket died before yielding any response byte — the
    normal end of a keep-alive grace period, not a request failure."""


class _PooledConnection:
    __slots__ = ("reader", "writer", "requests_served")

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.requests_served = 0


class ConnectionPool:
    """Keep-alive HTTP/1.1 GET client over a bounded idle-socket pool.

    One pool per (phase, event loop): sessions check a socket out per
    request, so concurrency is bounded by the session count and the pool
    only caps how many *idle* sockets are retained between requests.

    Persistence rules (the conformance tests pin each one):

    * a response with ``Connection: close``, an HTTP/1.0 status line, or
      no ``Content-Length`` (read-to-EOF framing) retires its socket;
    * EOF or a reset on a *reused* socket before the first response byte
      is a server-initiated close between requests — the pool discards
      the socket and retries on a fresh one, transparently;
    * the same failure on a *fresh* socket is a real connect error and
      propagates to the engine's retry policy;
    * at most ``max_stale_retries`` transparent reconnects per request —
      a server resetting every fresh socket raises
      :class:`StaleRetriesExhausted` instead of looping forever.
    """

    def __init__(
        self,
        host: str,
        port: int,
        stats: Optional[ClientStats] = None,
        max_idle: int = 32,
        max_stale_retries: int = 3,
    ) -> None:
        self.host = host
        self.port = port
        self.stats = stats if stats is not None else ClientStats()
        self.max_idle = max(1, int(max_idle))
        self.max_stale_retries = max(0, int(max_stale_retries))
        self._idle: List[_PooledConnection] = []
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle.

    async def _open(self) -> _PooledConnection:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        self.stats.connections_opened += 1
        return _PooledConnection(reader, writer)

    @staticmethod
    def _discard(conn: _PooledConnection) -> None:
        try:
            conn.writer.close()
        except Exception:
            pass

    def close(self) -> None:
        """Close every idle socket; in-flight checkouts self-discard."""
        self._closed = True
        while self._idle:
            self._discard(self._idle.pop())

    # ------------------------------------------------------------------
    # The request path.

    async def request(
        self,
        path: str,
        timeout: float = 5.0,
        headers: Optional[Mapping[str, str]] = None,
    ) -> HttpResponse:
        """One GET over a pooled (or fresh) keep-alive connection.

        Raises:
            asyncio.TimeoutError: the exchange (including any transparent
              stale-socket retry) exceeded ``timeout``.
            OSError: connect/reset failures on a fresh socket.
        """
        return await asyncio.wait_for(
            self._request(path, headers), timeout=timeout
        )

    async def _request(
        self, path: str, extra: Optional[Mapping[str, str]] = None
    ) -> HttpResponse:
        stale_retries = 0
        while True:
            reused = bool(self._idle)
            conn = self._idle.pop() if reused else await self._open()
            settled = False
            try:
                response, reuse_ok = await self._exchange(
                    conn, path, reused, extra
                )
                settled = True
            except _StaleConnection:
                settled = True
                self._discard(conn)
                self.stats.stale_retries += 1
                stale_retries += 1
                if stale_retries > self.max_stale_retries:
                    raise StaleRetriesExhausted(
                        f"{stale_retries} stale-connection retries for "
                        f"{path} (budget {self.max_stale_retries})"
                    )
                continue
            finally:
                if not settled:  # timeout/cancel/error: socket state unknown
                    self._discard(conn)
            conn.requests_served += 1
            self.stats.requests += 1
            if reused:
                self.stats.requests_on_reused += 1
            if reuse_ok and not self._closed and len(self._idle) < self.max_idle:
                self._idle.append(conn)
            else:
                if not reuse_ok:
                    self.stats.connections_retired += 1
                self._discard(conn)
            return response

    async def _exchange(
        self,
        conn: _PooledConnection,
        path: str,
        reused: bool,
        extra: Optional[Mapping[str, str]] = None,
    ) -> Tuple[HttpResponse, bool]:
        started = time.perf_counter()
        request = (
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "User-Agent: repro-loadgen\r\n"
            "Accept: application/json\r\n"
            f"{_extra_header_lines(extra)}"
            "\r\n"
        ).encode("ascii")
        try:
            conn.writer.write(request)
            await conn.writer.drain()
            status_line = await conn.reader.readline()
        except (ConnectionError, OSError) as exc:
            if reused:
                raise _StaleConnection() from exc
            raise
        if not status_line:
            # EOF before any response byte: between-requests close.
            if reused:
                raise _StaleConnection()
            raise OSError("server closed connection before responding")
        parts = status_line.decode("latin-1").split(" ", 2)
        if (
            len(parts) < 2
            or not parts[0].startswith("HTTP/")
            or not parts[1].isdigit()
        ):
            raise GarbledResponse(f"malformed status line {status_line!r}")
        version = parts[0]
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await conn.reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if line == b"":
                raise asyncio.IncompleteReadError(b"", None)
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = headers.get("content-length")
        if length is not None and length.isdigit():
            try:
                body = await conn.reader.readexactly(int(length))
            except asyncio.IncompleteReadError as exc:
                raise TruncatedBody(int(length), len(exc.partial)) from exc
            framed = True
        else:
            body = await conn.reader.read()
            framed = False
        reuse_ok = (
            framed
            and version != "HTTP/1.0"
            and headers.get("connection", "").lower() != "close"
        )
        response = HttpResponse(
            status=status,
            headers=headers,
            body=body,
            latency_seconds=time.perf_counter() - started,
            bytes_out=len(request),
        )
        return response, reuse_ok


class TokenBucket:
    """Open-loop pacing: tokens accrue at ``rate`` per second.

    ``acquire`` waits until a whole token is available, so request
    *starts* follow the configured arrival rate even when the service
    slows down — the property that makes open-loop numbers honest.
    """

    def __init__(self, rate: float, burst: float = 1.0) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.rate = float(rate)
        self.burst = max(1.0, float(burst))
        self._tokens = self.burst
        self._last = time.perf_counter()
        self._lock = asyncio.Lock()

    async def acquire(self) -> None:
        async with self._lock:
            while True:
                now = time.perf_counter()
                self._tokens = min(
                    self.burst, self._tokens + (now - self._last) * self.rate
                )
                self._last = now
                if self._tokens >= 1.0:
                    self._tokens -= 1.0
                    return
                await asyncio.sleep((1.0 - self._tokens) / self.rate)


@dataclass(frozen=True)
class PhaseSpec:
    """One phase of a load run.

    Attributes:
        name: report/phase label ("steady", "saturation", ...).
        mode: "closed" (worker sessions) or "open" (token-bucket rate).
        duration_seconds: nominal phase length.
        workers: concurrent sessions (closed) or pool size (open).
        rate: open-loop arrival rate in req/s (ignored when closed).
        mix: persona-kind weights (normalized; see personas.parse_mix).
        think_scale: multiplier on persona think times (0 disables
          thinking entirely — the saturation setting).
        min_requests: keep going past duration_seconds until at least
          this many requests completed (still subject to the overrun
          bail-out), so short CI phases have statistical weight.
        retry_sheds: whether a 503/504 is retried after its Retry-After.
          True models a polite client riding out overload (the chaos
          phase); False records the shed and moves straight on — the
          saturation setting, where the point is to *measure* refusals,
          not to wait them out.
        validate_bodies: whether 200 bodies are JSON-parsed and run
          through the persona validators.  Saturation disables it so the
          single-threaded client can offer more load than the gate can
          admit; golden-drift pinning stays on either way (a byte
          compare is cheap).
        shard_index/shard_count: which slice of the phase's canonical
          persona roster this engine runs.  The roster (and therefore
          every persona id and request schedule) is a pure function of
          ``(name, workers, mix)``; a shard keeps positions where
          ``position % shard_count == shard_index``, so the union over
          all shards is exactly the unsharded persona set — the
          multi-process pool's seed-partition contract.
    """

    name: str
    mode: str  # "closed" | "open"
    duration_seconds: float
    workers: int
    mix: Mapping[str, float]
    rate: float = 0.0
    think_scale: float = 1.0
    min_requests: int = 0
    retry_sheds: bool = True
    validate_bodies: bool = True
    shard_index: int = 0
    shard_count: int = 1

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ValueError(f"mode must be closed|open, got {self.mode!r}")
        if self.mode == "open" and self.rate <= 0:
            raise ValueError("open-loop phase needs rate > 0")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.duration_seconds <= 0:
            raise ValueError("duration_seconds must be > 0")
        if self.shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {self.shard_count}")
        if not 0 <= self.shard_index < self.shard_count:
            raise ValueError(
                f"shard_index must be in [0, {self.shard_count}), "
                f"got {self.shard_index}"
            )


class LoadEngine:
    """Runs phases of persona traffic against one host:port target.

    Args:
        host/port: the target service.
        seed: master seed; persona ``i`` of a phase derives its stream
          from ``(seed, "{phase}:{kind}:{i}")`` so schedules are stable
          per phase regardless of interleaving.
        expectations: pinned golden bodies keyed by path (the spawn
          harness pins ``/v1/experiments/<name>`` bodies from the
          store); a 200 whose body mismatches its pin is body drift.
        tracer: observability sink (counts land under ``loadgen.*``).
        policy: retry backoff; Retry-After (capped) takes precedence
          when larger.
        timeout: per-request client timeout, seconds.
        keepalive: reuse HTTP/1.1 connections via a per-phase
          :class:`ConnectionPool` (default); False opens one socket per
          request, the PR 6 behavior, for A/B capacity comparisons.
    """

    #: Statuses that are retried (with backoff / Retry-After).
    RETRYABLE = (503, 504)

    def __init__(
        self,
        host: str,
        port: int,
        catalog: Catalog,
        seed: int,
        expectations: Optional[Mapping[str, bytes]] = None,
        tracer: Optional[obs.Tracer] = None,
        policy: Optional[RetryPolicy] = None,
        timeout: float = 5.0,
        keepalive: bool = True,
    ) -> None:
        self.host = host
        self.port = port
        self.catalog = catalog
        self.seed = int(seed)
        self.expectations = dict(expectations or {})
        self.tracer = tracer if tracer is not None else obs.Tracer()
        self.policy = policy if policy is not None else RetryPolicy(
            max_attempts=3, base_delay=0.05, multiplier=2.0, max_delay=1.0
        )
        self.timeout = timeout
        self.keepalive = bool(keepalive)
        self.client_stats = ClientStats()
        self._pool: Optional[ConnectionPool] = None
        self._etags: "OrderedDict[str, str]" = OrderedDict()
        self.personas: List[Persona] = []

    # ------------------------------------------------------------------
    # Public API.

    def run_phase(self, spec: PhaseSpec) -> PhaseMetrics:
        """Run one phase to completion (blocking; owns its event loop)."""
        return asyncio.run(self._run_phase(spec))

    def run_script(
        self,
        name: str,
        persona: Persona,
        planned: Sequence[PlannedRequest],
        retry_sheds: bool = True,
        validate_bodies: bool = True,
    ) -> PhaseMetrics:
        """Issue a fixed request script sequentially, one in flight.

        The chaos-net gate drives this: with keep-alive off and exactly
        one request (plus its retries) in flight at a time, the target's
        connection-accept order is a pure function of the script — which
        is what makes the proxy's fault-sequence digest replayable.
        """
        return asyncio.run(
            self._run_script(name, persona, planned, retry_sheds,
                             validate_bodies)
        )

    async def _run_script(
        self,
        name: str,
        persona: Persona,
        planned: Sequence[PlannedRequest],
        retry_sheds: bool,
        validate_bodies: bool,
    ) -> PhaseMetrics:
        metrics = PhaseMetrics(name)
        started = time.perf_counter()
        pool = (
            ConnectionPool(self.host, self.port, stats=self.client_stats)
            if self.keepalive
            else None
        )
        self._pool = pool
        try:
            for request in planned:
                outcome = await self._issue(
                    persona,
                    request,
                    retry_sheds=retry_sheds,
                    validate_bodies=validate_bodies,
                )
                metrics.record(outcome)
                self.tracer.count_root(f"loadgen.outcome.{outcome.outcome}")
        finally:
            if pool is not None:
                pool.close()
            self._pool = None
        metrics.duration_seconds = time.perf_counter() - started
        self.tracer.count_root("loadgen.phases")
        return metrics

    def schedule_digests(self) -> List[Dict[str, object]]:
        """Determinism fingerprints for every persona that ran."""
        return [persona.schedule_digest() for persona in self.personas]

    # ------------------------------------------------------------------
    # Phase internals.

    def _build_personas(self, spec: PhaseSpec) -> List[Persona]:
        personas: List[Persona] = []
        for position, (kind, persona_id) in enumerate(
            roster(spec.name, spec.workers, spec.mix)
        ):
            if position % spec.shard_count != spec.shard_index:
                continue
            personas.append(
                make_persona(kind, persona_id, self.seed, self.catalog)
            )
        return personas

    async def _run_phase(self, spec: PhaseSpec) -> PhaseMetrics:
        metrics = PhaseMetrics(spec.name)
        personas = self._build_personas(spec)
        self.personas.extend(personas)
        started = time.perf_counter()
        soft_deadline = started + spec.duration_seconds
        hard_deadline = started + spec.duration_seconds * _PHASE_OVERRUN_FACTOR

        def keep_going() -> bool:
            now = time.perf_counter()
            if now >= hard_deadline:
                return False
            if now < soft_deadline:
                return True
            return metrics.requests < spec.min_requests

        bucket = (
            TokenBucket(spec.rate, burst=max(1.0, spec.rate / 10.0))
            if spec.mode == "open"
            else None
        )
        lock = asyncio.Lock()

        async def session(persona: Persona) -> None:
            while keep_going():
                if bucket is not None:
                    await bucket.acquire()
                    if not keep_going():
                        return
                request = persona.next_request()
                outcome = await self._issue(
                    persona,
                    request,
                    retry_sheds=spec.retry_sheds,
                    validate_bodies=spec.validate_bodies,
                )
                async with lock:
                    metrics.record(outcome)
                self.tracer.count_root(f"loadgen.outcome.{outcome.outcome}")
                think = request.think_seconds * spec.think_scale
                if think > 0:
                    await asyncio.sleep(think)

        pool = (
            ConnectionPool(
                self.host, self.port, stats=self.client_stats,
                max_idle=max(8, spec.workers),
            )
            if self.keepalive
            else None
        )
        self._pool = pool
        try:
            await asyncio.gather(*(session(p) for p in personas))
        finally:
            if pool is not None:
                pool.close()
            self._pool = None
        metrics.duration_seconds = time.perf_counter() - started
        self.tracer.count_root("loadgen.phases")
        return metrics

    # ------------------------------------------------------------------
    # One request, with retries.

    async def _fetch(
        self, path: str, headers: Optional[Mapping[str, str]] = None
    ) -> HttpResponse:
        """One GET via the phase's keep-alive pool (or one-shot when the
        pool is off or no phase is running)."""
        if self._pool is not None:
            return await self._pool.request(
                path, timeout=self.timeout, headers=headers
            )
        return await http_get(
            self.host, self.port, path, timeout=self.timeout, headers=headers
        )

    # ------------------------------------------------------------------
    # Conditional-GET bookkeeping.

    def _cached_etag(self, path: str) -> Optional[str]:
        etag = self._etags.get(path)
        if etag is not None:
            self._etags.move_to_end(path)
        return etag

    def _remember_etag(self, path: str, etag: str) -> None:
        self._etags[path] = etag
        self._etags.move_to_end(path)
        while len(self._etags) > _ETAG_CACHE_CAPACITY:
            self._etags.popitem(last=False)

    async def _issue(
        self,
        persona: Persona,
        request: PlannedRequest,
        retry_sheds: bool = True,
        validate_bodies: bool = True,
    ) -> Outcome:
        started = time.perf_counter()
        attempts = 0
        bytes_in = 0
        bytes_out = 0
        retry_after_seen = 0
        retry_after_missing = 0
        honored = 0.0
        last_status: Optional[int] = None
        last_outcome = "connect_error"
        detail = ""
        conditional_etag = (
            self._cached_etag(request.path) if request.conditional else None
        )
        extra_headers = (
            {"If-None-Match": conditional_etag}
            if conditional_etag is not None
            else None
        )
        for attempt in self.policy.attempts():
            attempts = attempt
            try:
                response = await self._fetch(request.path, extra_headers)
            except asyncio.TimeoutError:
                self.client_stats.stalled += 1
                last_status, last_outcome, detail = None, "client_timeout", "timeout"
                self.tracer.count_root("loadgen.client_timeout")
                continue
            except StaleRetriesExhausted as exc:
                # The pool already burned its own reconnect budget on
                # this request; stacking the policy's attempts on top
                # would defeat the bound.
                last_status, last_outcome = None, "retries_exhausted"
                detail = str(exc)
                break
            except TruncatedBody as exc:
                self.client_stats.truncated += 1
                last_status, last_outcome = None, "truncated"
                detail = str(exc)
                self.tracer.count_root("loadgen.truncated")
                await asyncio.sleep(self.policy.delay(attempt, request.path))
                continue
            except (OSError, asyncio.IncompleteReadError) as exc:
                if isinstance(exc, GarbledResponse):
                    self.client_stats.garbled += 1
                else:
                    self.client_stats.resets += 1
                last_status, last_outcome = None, "connect_error"
                detail = type(exc).__name__
                self.tracer.count_root("loadgen.connect_error")
                await asyncio.sleep(self.policy.delay(attempt, request.path))
                continue
            bytes_in += len(response.body)
            bytes_out += response.bytes_out
            last_status = response.status
            if response.status in self.RETRYABLE:
                retry_after = _parse_retry_after(response.headers)
                if retry_after is None:
                    # A 503/504 without a usable Retry-After is a broken
                    # shed — count it as a server error, not a polite one.
                    retry_after_missing += 1
                    last_outcome = "http_5xx"
                    detail = f"status {response.status} without Retry-After"
                else:
                    retry_after_seen += 1
                    last_outcome = "shed"
                    detail = f"status {response.status} Retry-After={retry_after}"
                if not retry_sheds:
                    break
                if attempt < self.policy.max_attempts:
                    backoff = self.policy.delay(attempt, request.path)
                    if retry_after is not None:
                        backoff = max(
                            backoff, min(float(retry_after), RETRY_AFTER_SLEEP_CAP)
                        )
                        honored += backoff
                    await asyncio.sleep(backoff)
                continue
            if response.status >= 500 and attempt < self.policy.max_attempts:
                # Generic 5xx (e.g. an injected internal error): retry on
                # the policy's backoff alone — only 503/504 speak
                # Retry-After.  A 5xx that survives every attempt is
                # classified below on the final lap.
                last_outcome = "http_5xx"
                detail = f"status {response.status}"
                await asyncio.sleep(self.policy.delay(attempt, request.path))
                continue
            last_outcome, detail = self._classify(
                persona,
                request,
                response,
                validate_bodies,
                sent_conditional=conditional_etag is not None,
            )
            break
        if (
            last_status is None
            and attempts >= self.policy.max_attempts
            and last_outcome in ("connect_error", "client_timeout", "truncated")
        ):
            # Every attempt in the budget died at the transport layer:
            # report the exhausted budget itself, so a reset storm reads
            # as what it is instead of one more generic connect error.
            detail = (
                f"retry budget exhausted after {attempts} attempts; "
                f"last {last_outcome}" + (f" ({detail})" if detail else "")
            )
            last_outcome = "retries_exhausted"
        if last_outcome == "retries_exhausted":
            self.tracer.count_root("loadgen.retries_exhausted")
        return Outcome(
            path=request.path,
            kind=request.kind,
            persona_id=persona.persona_id,
            outcome=last_outcome,
            status=last_status,
            latency_seconds=time.perf_counter() - started,
            attempts=attempts,
            bytes_in=bytes_in,
            bytes_out=bytes_out,
            retry_after_seen=retry_after_seen,
            retry_after_missing=retry_after_missing,
            retry_after_honored_seconds=honored,
            detail=detail,
        )

    def _classify(
        self,
        persona: Persona,
        request: PlannedRequest,
        response: HttpResponse,
        validate_bodies: bool = True,
        sent_conditional: bool = False,
    ) -> Tuple[str, str]:
        """Map a non-retryable response to an outcome kind + detail."""
        if response.status == 304:
            if sent_conditional:
                # The cached body is still current — nothing to pin or
                # validate; the matching ETag is the correctness check.
                self.tracer.count_root("loadgen.not_modified")
                return "not_modified", ""
            return "validation", "304 without If-None-Match"
        if response.status != 200:
            if 400 <= response.status < 500:
                return "http_4xx", f"status {response.status}"
            return "http_5xx", f"status {response.status}"
        etag = response.headers.get("etag")
        if etag:
            self._remember_etag(request.path, etag)
        expected = self.expectations.get(request.path)
        if expected is not None and response.body != expected:
            self.tracer.count_root("loadgen.body_drift")
            return (
                "body_drift",
                f"body sha256 {_short_digest(response.body)} != "
                f"pinned {_short_digest(expected)}",
            )
        if not validate_bodies:
            return "ok", ""
        try:
            body = json.loads(response.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return "validation", f"unparseable body: {type(exc).__name__}"
        reason = persona.validate(request, body)
        if reason is not None:
            self.tracer.count_root("loadgen.validation")
            return "validation", reason
        return "ok", ""


def _parse_retry_after(headers: Mapping[str, str]) -> Optional[int]:
    """Integer seconds from a Retry-After header, else None.

    The serving contract is delta-seconds only (no HTTP dates); a
    missing, non-numeric, or non-positive value counts as missing,
    because a client can't act on it.
    """
    raw = headers.get("retry-after")
    if raw is None:
        return None
    try:
        value = int(raw.strip())
    except ValueError:
        return None
    return value if value >= 1 else None


def _short_digest(body: bytes) -> str:
    return hashlib.sha256(body).hexdigest()[:12]


def discover_catalog(host: str, port: int, timeout: float = 5.0) -> Catalog:
    """Build a Catalog from the live service's index endpoints.

    Synchronous (uses http.client) because discovery happens once,
    before the event loop exists.  Only experiments whose index status
    is ``available`` become researcher targets — paging a known-missing
    result would just measure 404s.
    """
    import http.client

    def _get_json(path: str) -> dict:
        connection = http.client.HTTPConnection(host, port, timeout=timeout)
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            payload = response.read()
            if response.status != 200:
                raise RuntimeError(
                    f"GET {path} -> {response.status}: {payload[:200]!r}"
                )
            return json.loads(payload.decode("utf-8"))
        finally:
            connection.close()

    lists_index = _get_json("/v1/lists")
    experiments_index = _get_json("/v1/experiments")
    providers = tuple(
        str(row["id"]) for row in lists_index.get("providers", [])
    )
    experiments = tuple(
        str(row["id"])
        for row in experiments_index.get("experiments", [])
        if row.get("status") == "available"
    )
    return Catalog(
        providers=providers,
        days=int(lists_index.get("days", 0)),
        experiments=experiments,
        default_k=int(lists_index.get("default_k", 100)),
        max_k=int(lists_index.get("max_k", 1000)),
    )
