"""``repro chaos-net``: the end-to-end transport-resilience gate.

Topology: a scripted loadgen driver → :class:`~repro.faults.netproxy.
NetProxy` (armed with :func:`~repro.faults.plan.default_net_plan`) →
a chaos-armed ``repro serve`` child.  The proxy breaks the wire in
every way the ``net.*`` sites describe; the driver must convert each
break into a classified, retried outcome; the gate then requires

* every armed ``net.*`` site fired at least once,
* >= 99% eventual-success availability with golden-correct bodies,
* zero body drift (a truncated or garbled body must never be mistaken
  for a short-but-valid one),
* a fault-sequence digest that replays exactly (and therefore
  reproduces across runs with the same seed), and
* a clean SIGTERM drain of the serve child.

Determinism is structural, not statistical: the driver issues a fixed
request script sequentially with keep-alive off, so connection serials
at the proxy are a pure function of (script, seed) — including the
extra connections its own retries open.  Readiness polling and catalog
discovery go straight to the child, never through the proxy, keeping
driver traffic the only thing the serial sequence counts.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro import obs
from repro.faults.netproxy import NetProxy
from repro.faults.plan import default_net_plan
from repro.loadgen.engine import LoadEngine, discover_catalog
from repro.loadgen.metrics import PhaseMetrics
from repro.loadgen.personas import Catalog, Persona, PlannedRequest
from repro.loadgen.report import GateResult
from repro.runner.retry import RetryPolicy

__all__ = [
    "ChaosNetOptions",
    "ChaosNetResult",
    "ScriptPersona",
    "build_script",
    "run_chaos_net",
]

#: The availability floor (matches the loadgen chaos gate).
CHAOS_NET_AVAILABILITY_FLOOR = 0.99

#: Script length: quick for CI smoke, full for soaks.
_QUICK_REQUESTS = 120
_FULL_REQUESTS = 400

#: The driver's per-request client timeout.  Must sit *below* the net
#: plan's stall (so a stalled connection is observed as a timeout, not
#: absorbed) and comfortably above the child's honest p99.
_DRIVER_TIMEOUT = 1.5

#: ``net.read.stall`` sleep; > ``_DRIVER_TIMEOUT`` by construction.
_STALL_SECONDS = 2.5


class ScriptPersona(Persona):
    """The driver's identity: no planning (the script is external).

    The engine itself enforces that every 200 body parses as JSON and
    matches its pinned golden bytes where pinned; beyond that the
    script asks only that the body is a JSON object — the shape every
    served surface returns."""

    kind = "script"

    def validate(self, request: PlannedRequest, body: object) -> Optional[str]:
        if not isinstance(body, dict):
            return f"expected a JSON object, got {type(body).__name__}"
        return None


def build_script(catalog: Catalog, count: int) -> List[PlannedRequest]:
    """A fixed, deterministic request script over the served catalog.

    Pure rotation — no RNG at all: the same catalog and count yield the
    same script, which is half of what makes the fault digest replay.
    Mixes pinned experiment bodies (byte-exact drift detection), list
    slices across providers/days/k, the lists index, and health probes.
    """
    experiments = list(catalog.experiments)
    providers = list(catalog.providers)
    days = max(1, catalog.days)
    ks = (25, 50, 100)
    script: List[PlannedRequest] = []
    for i in range(count):
        slot = i % 5
        if slot in (0, 2) and experiments:
            name = experiments[(i // 5 + slot) % len(experiments)]
            path, kind = f"/v1/experiments/{name}", "experiment"
        elif slot == 1 and providers:
            provider = providers[(i // 5) % len(providers)]
            path = f"/v1/lists/{provider}/{i % days}?k={ks[i % len(ks)]}"
            kind = "lists"
        elif slot == 3:
            path, kind = "/v1/lists", "lists-index"
        else:
            path, kind = "/healthz", "health"
        script.append(
            PlannedRequest(
                path=path, kind=kind, think_seconds=0.0,
                persona_id="netchaos-driver", conditional=False,
            )
        )
    return script


@dataclass
class ChaosNetOptions:
    seed: int = 7
    quick: bool = False
    requests: Optional[int] = None  # override the quick/full script size
    cache_dir: Optional[str] = None
    jobs: int = 2
    manifest_path: Optional[str] = None


@dataclass
class ChaosNetResult:
    ok: bool
    gates: List[GateResult]
    digest: str
    manifest: Dict[str, object]
    manifest_path: Optional[str] = None
    lines: List[str] = field(default_factory=list)

    def render(self) -> str:
        return "\n".join(self.lines)


def _gate(name: str, passed: bool, measured: float, threshold: float,
          detail: str = "") -> GateResult:
    return GateResult(
        name=name, passed=passed, measured=measured,
        threshold=threshold, detail=detail,
    )


def run_chaos_net(options: ChaosNetOptions) -> ChaosNetResult:
    """Run the transport chaos gate end to end (blocking)."""
    from repro.core.experiments import SPECS
    from repro.loadgen import spawn as spawn_mod
    from repro.qa.goldens import GOLDEN_CONFIG
    from repro.store import default_cache_dir

    config = GOLDEN_CONFIG
    cache_dir = options.cache_dir or str(default_cache_dir())
    names = sorted(SPECS)
    count = options.requests or (
        _QUICK_REQUESTS if options.quick else _FULL_REQUESTS
    )

    print(f"[chaos-net: ensuring {len(names)} result(s) in {cache_dir}]")
    failures = spawn_mod.ensure_results(
        names, config, cache_dir, jobs=options.jobs
    )
    if failures:
        raise RuntimeError(
            f"could not populate results: {', '.join(failures)}"
        )
    expectations = spawn_mod.pin_expectations(names, config, cache_dir)

    scratch = tempfile.mkdtemp(prefix="repro-chaosnet-")
    # The child keeps its own store-level chaos (slow + corrupt reads,
    # absorbed by breaker/LKG) but no injected 5xx — transport faults
    # own the error budget in this gate.
    serve_plan_path = spawn_mod.write_fault_plan(
        options.seed, scratch, error_probability=0.0
    )
    access_log = f"{scratch}/serve_access.log"
    child_port = spawn_mod.free_port()
    command = spawn_mod.serve_command(
        port=child_port,
        cache_dir=cache_dir,
        quick=True,
        jobs=2,
        queue_depth=4,
        breaker_cooldown=0.4,
        fault_plan=serve_plan_path,
        access_log=access_log,
    )
    server = spawn_mod.SpawnedServer(command, "127.0.0.1", child_port)
    print(f"[chaos-net: serve child on port {child_port}; warming...]")
    server.start()

    net_plan = default_net_plan(options.seed, stall_seconds=_STALL_SECONDS)
    armed_sites = sorted({rule.site for rule in net_plan.rules})
    proxy = NetProxy("127.0.0.1", child_port, plan=net_plan)
    drain_code: Optional[int] = None
    try:
        server.wait_ready()
        catalog = discover_catalog("127.0.0.1", child_port)
        proxy.start()
        assert proxy.port is not None
        script = build_script(catalog, count)
        print(f"[chaos-net: proxy on port {proxy.port}; driving "
              f"{len(script)} scripted requests, seed {options.seed}, "
              f"{len(armed_sites)} armed net sites]")
        tracer = obs.Tracer("chaos-net")
        engine = LoadEngine(
            "127.0.0.1", proxy.port, catalog, options.seed,
            expectations=expectations,
            tracer=tracer,
            policy=RetryPolicy(
                max_attempts=4, base_delay=0.05, multiplier=2.0,
                max_delay=0.4,
            ),
            timeout=_DRIVER_TIMEOUT,
            keepalive=False,
        )
        persona = ScriptPersona("netchaos-driver", options.seed, catalog)
        phase = engine.run_script("chaos-net", persona, script)
    finally:
        proxy.stop()
        drain_code = server.stop()

    fired = proxy.fired_snapshot()
    digest = proxy.fault_digest()
    replay = proxy.replay_digest()
    missing = [site for site in armed_sites if not fired.get(site)]

    gates = [
        _gate(
            "net_sites_fired",
            not missing,
            float(len(armed_sites) - len(missing)),
            float(len(armed_sites)),
            "all armed net sites fired" if not missing
            else f"never fired: {', '.join(missing)}",
        ),
        _gate(
            "availability",
            phase.availability >= CHAOS_NET_AVAILABILITY_FLOOR,
            phase.availability,
            CHAOS_NET_AVAILABILITY_FLOOR,
            f"{phase.requests} requests, "
            f"{phase.by_outcome['ok'] + phase.by_outcome['not_modified']} good",
        ),
        _gate(
            "body_drift", phase.body_drift == 0,
            float(phase.body_drift), 0.0,
            f"{len(expectations)} pinned golden bodies",
        ),
        _gate(
            "digest_replay", digest == replay,
            1.0 if digest == replay else 0.0, 1.0,
            f"observed {digest[:16]}.. vs replayed {replay[:16]}..",
        ),
        _gate(
            "drain", drain_code == 0, float(drain_code or 0), 0.0,
            "child exited clean on SIGTERM",
        ),
    ]
    ok = all(gate.passed for gate in gates)

    manifest: Dict[str, object] = {
        "seed": options.seed,
        "quick": options.quick,
        "requests": count,
        "net_plan": net_plan.to_dict(),
        "proxy": {
            "connections": proxy.connections,
            "fired": fired,
            "fault_log": list(proxy.fault_log),
            "digest": digest,
            "replay_digest": replay,
        },
        "phase": {
            "requests": phase.requests,
            "attempts": phase.attempts,
            "availability": round(phase.availability, 6),
            "error_rate": round(phase.error_rate, 6),
            "body_drift": phase.body_drift,
            "by_outcome": {
                kind: n for kind, n in phase.by_outcome.items() if n
            },
        },
        "client": engine.client_stats.to_dict(),
        "serve": {
            "command": command,
            "fault_plan": str(serve_plan_path),
            "access_log": access_log,
            "drain_exit_code": drain_code,
        },
        "gates": [gate.to_dict() for gate in gates],
        "ok": ok,
    }

    manifest_path = options.manifest_path
    if manifest_path:
        path = Path(manifest_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")

    lines = [
        f"chaos-net seed {options.seed}: {phase.requests} requests, "
        f"{proxy.connections} connections through the proxy",
        "fault fires: " + (
            ", ".join(f"{site}={fired[site]}" for site in sorted(fired))
            or "none"
        ),
        "outcomes: " + ", ".join(
            f"{kind}={n}" for kind, n in sorted(phase.by_outcome.items()) if n
        ),
        f"client: {engine.client_stats.to_dict()}",
        f"fault digest: {digest}",
    ]
    for gate in gates:
        status = "PASS" if gate.passed else "FAIL"
        lines.append(
            f"  [{status}] {gate.name}: {gate.measured:g} "
            f"(threshold {gate.threshold:g}) {gate.detail}"
        )
    if manifest_path:
        lines.append(f"manifest: {manifest_path}")
    return ChaosNetResult(
        ok=ok, gates=gates, digest=digest, manifest=manifest,
        manifest_path=manifest_path, lines=lines,
    )
