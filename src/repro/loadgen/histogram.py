"""A mergeable, log-bucketed latency histogram.

Load generation produces latency samples at a rate where keeping every
raw sample is wasteful and sorting them at report time is worse; the
classic answer (HdrHistogram, Prometheus native histograms) is
*logarithmic bucketing*: bucket ``i`` covers
``[min_seconds * growth**i, min_seconds * growth**(i+1))``, so relative
quantile error is bounded by the growth factor no matter how skewed the
distribution is.

Design constraints, in order:

* **mergeable** — per-phase and per-endpoint histograms with identical
  parameters merge by plain bucket addition, which is associative and
  commutative; the report's totals are a merge, and the test suite holds
  the algebra to it.
* **bounded error** — :meth:`quantile` returns the geometric midpoint of
  the covering bucket clamped to the observed min/max, so its relative
  error is at most ``growth - 1`` against an exact sort (single-sample
  and min/max queries are exact).
* **schema-stable** — :meth:`to_dict` emits sorted sparse buckets and
  round-trips losslessly through JSON (:meth:`from_dict`).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Tuple

__all__ = ["LatencyHistogram", "DEFAULT_MIN_SECONDS", "DEFAULT_GROWTH"]

#: Smallest resolvable latency (0.1 ms); anything below lands in bucket 0.
DEFAULT_MIN_SECONDS = 1e-4

#: Bucket growth factor: 2**(1/8) per bucket keeps relative quantile
#: error under ~9.1% while spanning 0.1ms..60s in ~154 sparse buckets.
DEFAULT_GROWTH = 2.0 ** 0.125

#: Layout version of the serialized histogram.
_SCHEMA = 1


class LatencyHistogram:
    """Sparse log-bucketed histogram over positive latency seconds.

    Args:
        min_seconds: lower edge of bucket 0 (values below clamp into it).
        growth: per-bucket growth factor (> 1); bounds relative error.
    """

    def __init__(
        self,
        min_seconds: float = DEFAULT_MIN_SECONDS,
        growth: float = DEFAULT_GROWTH,
    ) -> None:
        if min_seconds <= 0:
            raise ValueError(f"min_seconds must be > 0, got {min_seconds}")
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        self.min_seconds = float(min_seconds)
        self.growth = float(growth)
        self._log_growth = math.log(self.growth)
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.sum_seconds = 0.0
        self.min_observed = math.inf
        self.max_observed = 0.0

    # ------------------------------------------------------------------
    # Recording and merging.

    def _index_of(self, seconds: float) -> int:
        if seconds <= self.min_seconds:
            return 0
        return int(math.log(seconds / self.min_seconds) / self._log_growth)

    def record(self, seconds: float) -> None:
        """Add one latency sample (negative samples clamp to 0)."""
        seconds = max(0.0, float(seconds))
        self._buckets[self._index_of(seconds)] = (
            self._buckets.get(self._index_of(seconds), 0) + 1
        )
        self.count += 1
        self.sum_seconds += seconds
        self.min_observed = min(self.min_observed, seconds)
        self.max_observed = max(self.max_observed, seconds)

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into this histogram (in place; returns self).

        Raises:
            ValueError: when the bucket parameters differ — merging
              differently-shaped histograms would silently corrupt
              quantiles.
        """
        if (other.min_seconds, other.growth) != (self.min_seconds, self.growth):
            raise ValueError(
                "cannot merge histograms with different bucket parameters: "
                f"({self.min_seconds}, {self.growth}) vs "
                f"({other.min_seconds}, {other.growth})"
            )
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self.count += other.count
        self.sum_seconds += other.sum_seconds
        self.min_observed = min(self.min_observed, other.min_observed)
        self.max_observed = max(self.max_observed, other.max_observed)
        return self

    @classmethod
    def merged(cls, histograms: Iterable["LatencyHistogram"]) -> "LatencyHistogram":
        """A fresh histogram holding the sum of ``histograms``."""
        result: "LatencyHistogram" = None  # type: ignore[assignment]
        for histogram in histograms:
            if result is None:
                result = cls(histogram.min_seconds, histogram.growth)
            result.merge(histogram)
        return result if result is not None else cls()

    # ------------------------------------------------------------------
    # Queries.

    @property
    def mean(self) -> float:
        """Exact mean of the recorded samples (0.0 when empty)."""
        return self.sum_seconds / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile in seconds, relative error <= ``growth - 1``.

        Uses the ``ceil(q * count)``-th order statistic (the same
        convention the tests' exact sort uses), represented by the
        geometric midpoint of its bucket and clamped to the observed
        min/max so extreme quantiles and single-sample histograms are
        exact.  Returns 0.0 on an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self.min_observed
        if q == 1.0:
            return self.max_observed
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                lower = self.min_seconds * self.growth ** index
                midpoint = lower * math.sqrt(self.growth)
                return min(max(midpoint, self.min_observed), self.max_observed)
        return self.max_observed  # unreachable unless counters drift

    def quantiles_ms(self) -> Dict[str, float]:
        """The report's canonical quantile block, in milliseconds."""
        return {
            "p50_ms": round(self.quantile(0.50) * 1000.0, 3),
            "p90_ms": round(self.quantile(0.90) * 1000.0, 3),
            "p99_ms": round(self.quantile(0.99) * 1000.0, 3),
            "p999_ms": round(self.quantile(0.999) * 1000.0, 3),
        }

    # ------------------------------------------------------------------
    # Serialization.

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe, schema-stable projection (sorted sparse buckets)."""
        buckets: List[Tuple[int, int]] = sorted(self._buckets.items())
        return {
            "schema": _SCHEMA,
            "min_seconds": self.min_seconds,
            "growth": self.growth,
            "count": self.count,
            "sum_seconds": self.sum_seconds,
            "min_observed": self.min_observed if self.count else None,
            "max_observed": self.max_observed if self.count else None,
            "buckets": {str(index): count for index, count in buckets},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "LatencyHistogram":
        """Rebuild from :meth:`to_dict` output."""
        histogram = cls(
            min_seconds=float(payload["min_seconds"]),  # type: ignore[arg-type]
            growth=float(payload["growth"]),  # type: ignore[arg-type]
        )
        histogram.count = int(payload.get("count", 0))  # type: ignore[arg-type]
        histogram.sum_seconds = float(payload.get("sum_seconds", 0.0))  # type: ignore[arg-type]
        minimum = payload.get("min_observed")
        maximum = payload.get("max_observed")
        histogram.min_observed = (
            math.inf if minimum is None else float(minimum)  # type: ignore[arg-type]
        )
        histogram.max_observed = 0.0 if maximum is None else float(maximum)  # type: ignore[arg-type]
        for index, count in dict(payload.get("buckets", {})).items():
            histogram._buckets[int(index)] = int(count)
        return histogram

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatencyHistogram(count={self.count}, "
            f"p50={self.quantile(0.5) * 1000:.2f}ms, "
            f"p99={self.quantile(0.99) * 1000:.2f}ms)"
        )
