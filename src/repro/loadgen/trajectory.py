"""The latency trajectory: ``LATENCY_<yyyymmdd>.json`` and its drift gate.

BENCH files track pipeline throughput run over run; this module gives
the serve layer the same treatment for *latency under load*.  Every
loadgen run distills its merged phase metrics into a small,
schema-stable document — per-endpoint p50/p90/p99/p99.9, achieved
requests/sec, shed rate, worker count — and ``repro loadgen --compare
<previous.json>`` turns two such documents into pass/fail gates: p99
regressions beyond a tolerance exit nonzero, so a serve-layer slowdown
fails CI instead of passing silently behind a still-green SLO ceiling.

The comparison is deliberately forgiving about *shape*: an endpoint
present in only one document (a new route, a retired one) is reported
as a passing gate with a note, never an error — the gate exists to
catch drift in what both runs measured, not to freeze the route table.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

from repro.loadgen.metrics import PhaseMetrics
from repro.loadgen.report import GateResult

__all__ = [
    "DEFAULT_P99_TOLERANCE",
    "LATENCY_SCHEMA_VERSION",
    "build_trajectory",
    "compare_trajectories",
    "latency_path",
    "load_trajectory",
    "write_trajectory",
]

#: Layout version of the LATENCY JSON document.
LATENCY_SCHEMA_VERSION = 1

#: Default allowed relative p99 growth between runs.  Generous on
#: purpose: CI runners are shared hardware and cross-run noise is real;
#: the gate is for regressions, not jitter.
DEFAULT_P99_TOLERANCE = 0.50

#: Absolute slack (ms) added on top of the relative tolerance, so
#: microsecond-scale endpoints (health probes) can't fail on scheduler
#: noise alone.
DEFAULT_ABS_SLACK_MS = 25.0

#: Endpoints with fewer samples than this in either run are noted, not
#: gated — a p99 over a handful of requests is an anecdote.
MIN_GATED_SAMPLES = 20


def _quantile_block(histogram) -> Dict[str, object]:
    block: Dict[str, object] = dict(histogram.quantiles_ms())
    block["count"] = histogram.count
    return block


def build_trajectory(
    *,
    seed: int,
    mode: str,
    workers: int,
    keepalive: bool,
    phases: Sequence[PhaseMetrics],
) -> Dict[str, object]:
    """Distill merged phase metrics into the LATENCY document.

    ``achieved_rps`` is requests over summed wall time of the (serial)
    phases — the honest offered-load number the acceptance criterion
    tracks.  Endpoint keys are the personas' request kinds (``lists``,
    ``experiment``, ``health``, ...), which is what stays stable as
    routes evolve.
    """
    totals = PhaseMetrics("totals")
    for phase in phases:
        totals.merge(phase)
    wall = sum(phase.duration_seconds for phase in phases)
    return {
        "latency_schema_version": LATENCY_SCHEMA_VERSION,
        "date": time.strftime("%Y%m%d"),
        "seed": int(seed),
        "mode": mode,
        "workers": int(workers),
        "keepalive": bool(keepalive),
        "requests": totals.requests,
        "achieved_rps": round(totals.requests / wall, 2) if wall else 0.0,
        "shed_rate": round(totals.shed_rate, 6),
        "overall": _quantile_block(totals.latency),
        "endpoints": {
            kind: _quantile_block(histogram)
            for kind, histogram in sorted(totals.latency_by_kind.items())
        },
        "phases": {
            phase.name: {
                "achieved_rps": round(phase.throughput_rps(), 2),
                "shed_rate": round(phase.shed_rate, 6),
                **_quantile_block(phase.latency),
            }
            for phase in phases
        },
    }


def compare_trajectories(
    current: Mapping[str, object],
    previous: Mapping[str, object],
    *,
    tolerance: float = DEFAULT_P99_TOLERANCE,
    abs_slack_ms: float = DEFAULT_ABS_SLACK_MS,
    min_samples: int = MIN_GATED_SAMPLES,
) -> List[GateResult]:
    """Gate ``current`` against ``previous``: p99 must not regress.

    One gate per endpoint both documents measured with enough samples,
    plus one for the overall distribution.  The threshold for each is
    ``previous_p99 * (1 + tolerance) + abs_slack_ms``.  Endpoints
    missing from either side, or too thin to judge, produce *passing*
    gates whose detail says why they were not compared.

    Raises:
        ValueError: either document is not a LATENCY schema this code
          understands.
    """
    for label, document in (("current", current), ("previous", previous)):
        version = document.get("latency_schema_version")
        if version != LATENCY_SCHEMA_VERSION:
            raise ValueError(
                f"{label} trajectory has schema {version!r}; "
                f"expected {LATENCY_SCHEMA_VERSION}"
            )
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    gates: List[GateResult] = []

    def gate_one(name: str, cur: Mapping[str, object], prev: Mapping[str, object]) -> None:
        cur_p99 = float(cur.get("p99_ms", 0.0))
        prev_p99 = float(prev.get("p99_ms", 0.0))
        cur_count = int(cur.get("count", 0))
        prev_count = int(prev.get("count", 0))
        if min(cur_count, prev_count) < min_samples:
            gates.append(GateResult(
                name=f"trajectory.{name}.p99",
                passed=True,
                measured=cur_p99,
                threshold=-1.0,  # sentinel: not gated
                detail=(
                    f"not gated: only {min(cur_count, prev_count)} samples "
                    f"(< {min_samples})"
                ),
            ))
            return
        threshold = prev_p99 * (1.0 + tolerance) + abs_slack_ms
        gates.append(GateResult(
            name=f"trajectory.{name}.p99",
            passed=cur_p99 <= threshold,
            measured=cur_p99,
            threshold=round(threshold, 3),
            detail=(
                f"previous p99 {prev_p99}ms, tolerance "
                f"{tolerance:.0%} + {abs_slack_ms}ms"
            ),
        ))

    gate_one("overall", dict(current.get("overall", {})), dict(previous.get("overall", {})))
    cur_endpoints = dict(current.get("endpoints", {}))
    prev_endpoints = dict(previous.get("endpoints", {}))
    for kind in sorted(cur_endpoints):
        if kind not in prev_endpoints:
            gates.append(GateResult(
                name=f"trajectory.{kind}.p99",
                passed=True,
                measured=float(dict(cur_endpoints[kind]).get("p99_ms", 0.0)),
                threshold=-1.0,  # sentinel: not gated
                detail="no baseline for this endpoint; skipped",
            ))
            continue
        gate_one(kind, dict(cur_endpoints[kind]), dict(prev_endpoints[kind]))
    for kind in sorted(set(prev_endpoints) - set(cur_endpoints)):
        gates.append(GateResult(
            name=f"trajectory.{kind}.p99",
            passed=True,
            measured=0.0,
            threshold=-1.0,  # sentinel: not gated
            detail="endpoint absent from current run; skipped",
        ))
    return gates


def latency_path(out_dir: os.PathLike = ".", date: Optional[str] = None) -> Path:
    """The canonical output path: ``<out_dir>/LATENCY_<yyyymmdd>.json``."""
    stamp = date if date is not None else time.strftime("%Y%m%d")
    return Path(os.fspath(out_dir)) / f"LATENCY_{stamp}.json"


def write_trajectory(payload: Mapping[str, object], path: os.PathLike) -> Path:
    """Write a LATENCY document as stable (sorted-key) indented JSON."""
    target = Path(os.fspath(path))
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(dict(payload), indent=2, sort_keys=True) + "\n")
    return target


def load_trajectory(path: os.PathLike) -> Dict[str, object]:
    """Read a LATENCY document (no schema check; compare does that).

    Raises:
        OSError: unreadable file.
        ValueError: not valid JSON or not a JSON object.
    """
    try:
        payload = json.loads(Path(os.fspath(path)).read_text())
    except json.JSONDecodeError as error:
        raise ValueError(f"{os.fspath(path)} is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ValueError(f"{os.fspath(path)} is not a JSON object")
    return payload
