"""Aggregated load-test metrics: outcome taxonomy, rates, histograms.

The engine reports every completed request attempt as an
:class:`Outcome`; :class:`PhaseMetrics` folds those into counters and
log-bucketed latency histograms (overall and per request kind).  The
taxonomy matters more than the raw counts:

* ``ok`` — 200 with a semantically valid, golden-identical body.
* ``not_modified`` — 304 answering a conditional GET the client sent
  with ``If-None-Match``: the cached body is still current.  Counted as
  success in availability (it is the *cheapest* correct answer), but
  kept separate from ``ok`` so reports show how much traffic the
  ETag layer absorbed.
* ``shed`` — 503/504 *with* ``Retry-After``: the service deliberately
  refused work.  Sheds are excluded from the availability denominator
  (turning clients away politely under overload is correct behavior),
  but tracked as ``shed_rate`` so the SLO gate can bound them.
* ``body_drift`` — a 200 whose body differs from the pinned golden
  bytes: the one unforgivable outcome, counted separately and gated at
  zero.
* ``validation`` — a 200 whose body fails the persona's semantic checks.
* ``http_5xx`` / ``http_4xx`` — everything else the server said.
* ``client_timeout`` / ``connect_error`` — the client gave up.
* ``truncated`` — the peer closed before delivering the bytes its
  ``Content-Length`` promised.  Detected, never silently returned as a
  short body; retried like a connect error.
* ``retries_exhausted`` — every attempt in the per-request retry budget
  failed at the transport layer (reset / stall / truncation), or the
  pool's stale-reconnect budget ran dry.  Its own kind — a reset storm
  must show up as exhausted budgets, not a vague ``connect_error``.

Phase metrics merge (histogram merge + counter addition) into run
totals, which is what the report's ``totals`` block is.  The same
algebra crosses process boundaries: a multi-process worker serializes
its phase with :meth:`PhaseMetrics.to_spill` (exact counters plus
*full* per-kind histograms, unlike the rounded report projection) and
the parent rebuilds and merges with :meth:`PhaseMetrics.from_spill`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.loadgen.histogram import LatencyHistogram

__all__ = ["Outcome", "PhaseMetrics", "OUTCOME_KINDS", "SPILL_SCHEMA_VERSION"]

OUTCOME_KINDS = (
    "ok",
    "not_modified",
    "shed",
    "body_drift",
    "validation",
    "http_4xx",
    "http_5xx",
    "client_timeout",
    "connect_error",
    "truncated",
    "retries_exhausted",
)

#: Cap on stored failure examples, so a pathological run can't bloat the report.
_MAX_SAMPLES = 10

#: Layout version of the worker spill document.
SPILL_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Outcome:
    """One finished request (after retries), as the engine saw it."""

    path: str
    kind: str  # request kind from the persona (lists, experiment, ...)
    persona_id: str
    outcome: str  # one of OUTCOME_KINDS
    status: Optional[int]  # HTTP status, None for client-side failures
    latency_seconds: float  # total time incl. retries
    attempts: int = 1
    bytes_in: int = 0
    bytes_out: int = 0
    retry_after_seen: int = 0  # 503/504 responses that carried Retry-After
    retry_after_missing: int = 0  # 503/504 responses that lacked/garbled it
    retry_after_honored_seconds: float = 0.0  # total seconds slept because of it
    detail: str = ""  # validator/drift reason, for the report samples


class PhaseMetrics:
    """Counters + histograms for one load phase; mergeable into totals."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.requests = 0
        self.attempts = 0
        self.retries = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.by_outcome: Dict[str, int] = {kind: 0 for kind in OUTCOME_KINDS}
        self.by_status: Dict[str, int] = {}
        self.by_kind: Dict[str, int] = {}
        self.retry_after_seen = 0
        self.retry_after_missing = 0
        self.retry_after_honored_seconds = 0.0
        self.latency = LatencyHistogram()
        self.latency_by_kind: Dict[str, LatencyHistogram] = {}
        self.samples: List[Dict[str, object]] = []
        self.duration_seconds = 0.0

    # ------------------------------------------------------------------
    # Recording.

    def record(self, outcome: Outcome) -> None:
        if outcome.outcome not in self.by_outcome:
            raise ValueError(f"unknown outcome kind {outcome.outcome!r}")
        self.requests += 1
        self.attempts += outcome.attempts
        self.retries += max(0, outcome.attempts - 1)
        self.bytes_in += outcome.bytes_in
        self.bytes_out += outcome.bytes_out
        self.by_outcome[outcome.outcome] += 1
        if outcome.status is not None:
            key = str(outcome.status)
            self.by_status[key] = self.by_status.get(key, 0) + 1
        self.by_kind[outcome.kind] = self.by_kind.get(outcome.kind, 0) + 1
        self.retry_after_seen += outcome.retry_after_seen
        self.retry_after_missing += outcome.retry_after_missing
        self.retry_after_honored_seconds += outcome.retry_after_honored_seconds
        self.latency.record(outcome.latency_seconds)
        per_kind = self.latency_by_kind.get(outcome.kind)
        if per_kind is None:
            per_kind = self.latency_by_kind[outcome.kind] = LatencyHistogram()
        per_kind.record(outcome.latency_seconds)
        if (
            outcome.outcome in ("body_drift", "validation", "http_5xx", "http_4xx")
            and len(self.samples) < _MAX_SAMPLES
        ):
            self.samples.append({
                "path": outcome.path,
                "outcome": outcome.outcome,
                "status": outcome.status,
                "detail": outcome.detail,
            })

    def merge(self, other: "PhaseMetrics") -> "PhaseMetrics":
        """Fold ``other`` into this (for the run totals); returns self."""
        self.requests += other.requests
        self.attempts += other.attempts
        self.retries += other.retries
        self.bytes_in += other.bytes_in
        self.bytes_out += other.bytes_out
        for kind, count in other.by_outcome.items():
            self.by_outcome[kind] = self.by_outcome.get(kind, 0) + count
        for status, count in other.by_status.items():
            self.by_status[status] = self.by_status.get(status, 0) + count
        for kind, count in other.by_kind.items():
            self.by_kind[kind] = self.by_kind.get(kind, 0) + count
        self.retry_after_seen += other.retry_after_seen
        self.retry_after_missing += other.retry_after_missing
        self.retry_after_honored_seconds += other.retry_after_honored_seconds
        self.latency.merge(other.latency)
        for kind, histogram in other.latency_by_kind.items():
            mine = self.latency_by_kind.get(kind)
            if mine is None:
                mine = self.latency_by_kind[kind] = LatencyHistogram()
            mine.merge(histogram)
        for sample in other.samples:
            if len(self.samples) < _MAX_SAMPLES:
                self.samples.append(sample)
        self.duration_seconds += other.duration_seconds
        return self

    # ------------------------------------------------------------------
    # Derived rates (all safe on an empty phase).

    @property
    def sheds(self) -> int:
        return self.by_outcome["shed"]

    @property
    def shed_rate(self) -> float:
        """Fraction of requests the service deliberately refused."""
        return self.sheds / self.requests if self.requests else 0.0

    @property
    def availability(self) -> float:
        """Correct answers over non-shed requests.

        A 304 to a conditional GET counts as a correct answer — the
        service validated the client's cached body without resending it.
        Sheds are excluded from the denominator: an overloaded service
        saying "come back later" is behaving, not failing.
        """
        non_shed = self.requests - self.sheds
        good = self.by_outcome["ok"] + self.by_outcome["not_modified"]
        return good / non_shed if non_shed else 1.0

    @property
    def error_rate(self) -> float:
        """Hard failures (5xx/4xx/timeouts/drift/validation) over all."""
        if not self.requests:
            return 0.0
        errors = sum(
            self.by_outcome[kind]
            for kind in (
                "body_drift", "validation", "http_4xx", "http_5xx",
                "client_timeout", "connect_error", "truncated",
                "retries_exhausted",
            )
        )
        return errors / self.requests

    @property
    def body_drift(self) -> int:
        return self.by_outcome["body_drift"]

    def throughput_rps(self) -> float:
        return (
            self.requests / self.duration_seconds if self.duration_seconds else 0.0
        )

    # ------------------------------------------------------------------
    # Serialization.

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "duration_seconds": round(self.duration_seconds, 3),
            "requests": self.requests,
            "attempts": self.attempts,
            "retries": self.retries,
            "throughput_rps": round(self.throughput_rps(), 2),
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "by_outcome": dict(sorted(self.by_outcome.items())),
            "by_status": dict(sorted(self.by_status.items())),
            "by_kind": dict(sorted(self.by_kind.items())),
            "rates": {
                "shed_rate": round(self.shed_rate, 6),
                "availability": round(self.availability, 6),
                "error_rate": round(self.error_rate, 6),
            },
            "retry_after": {
                "seen": self.retry_after_seen,
                "missing": self.retry_after_missing,
                "honored_seconds": round(self.retry_after_honored_seconds, 3),
            },
            "latency": {
                **self.latency.quantiles_ms(),
                "mean_ms": round(self.latency.mean * 1000.0, 3),
                "histogram": self.latency.to_dict(),
            },
            "latency_by_kind": {
                kind: histogram.quantiles_ms()
                for kind, histogram in sorted(self.latency_by_kind.items())
            },
            "samples": list(self.samples),
        }

    def to_spill(self) -> Dict[str, object]:
        """Lossless projection for worker spill files.

        Unlike :meth:`to_dict` (the human-facing report block, which
        rounds rates and collapses per-kind histograms to quantiles),
        this keeps exact counters and full histograms so the parent's
        merge is bit-identical to having recorded every outcome in one
        process.
        """
        return {
            "spill_schema_version": SPILL_SCHEMA_VERSION,
            "name": self.name,
            "duration_seconds": self.duration_seconds,
            "requests": self.requests,
            "attempts": self.attempts,
            "retries": self.retries,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "by_outcome": dict(sorted(self.by_outcome.items())),
            "by_status": dict(sorted(self.by_status.items())),
            "by_kind": dict(sorted(self.by_kind.items())),
            "retry_after_seen": self.retry_after_seen,
            "retry_after_missing": self.retry_after_missing,
            "retry_after_honored_seconds": self.retry_after_honored_seconds,
            "latency": self.latency.to_dict(),
            "latency_by_kind": {
                kind: histogram.to_dict()
                for kind, histogram in sorted(self.latency_by_kind.items())
            },
            "samples": list(self.samples),
        }

    @classmethod
    def from_spill(cls, payload: Dict[str, object]) -> "PhaseMetrics":
        """Rebuild a phase from :meth:`to_spill` output.

        Raises:
            ValueError: unknown spill schema version.
        """
        version = payload.get("spill_schema_version")
        if version != SPILL_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported spill schema {version!r}; "
                f"expected {SPILL_SCHEMA_VERSION}"
            )
        phase = cls(str(payload["name"]))
        phase.duration_seconds = float(payload.get("duration_seconds", 0.0))
        phase.requests = int(payload.get("requests", 0))
        phase.attempts = int(payload.get("attempts", 0))
        phase.retries = int(payload.get("retries", 0))
        phase.bytes_in = int(payload.get("bytes_in", 0))
        phase.bytes_out = int(payload.get("bytes_out", 0))
        for kind, count in dict(payload.get("by_outcome", {})).items():
            if kind not in phase.by_outcome:
                raise ValueError(f"unknown outcome kind {kind!r} in spill")
            phase.by_outcome[kind] = int(count)
        phase.by_status = {
            str(status): int(count)
            for status, count in dict(payload.get("by_status", {})).items()
        }
        phase.by_kind = {
            str(kind): int(count)
            for kind, count in dict(payload.get("by_kind", {})).items()
        }
        phase.retry_after_seen = int(payload.get("retry_after_seen", 0))
        phase.retry_after_missing = int(payload.get("retry_after_missing", 0))
        phase.retry_after_honored_seconds = float(
            payload.get("retry_after_honored_seconds", 0.0)
        )
        phase.latency = LatencyHistogram.from_dict(dict(payload["latency"]))
        phase.latency_by_kind = {
            str(kind): LatencyHistogram.from_dict(dict(blob))
            for kind, blob in dict(payload.get("latency_by_kind", {})).items()
        }
        phase.samples = [dict(sample) for sample in payload.get("samples", [])][
            :_MAX_SAMPLES
        ]
        return phase
