"""``repro loadgen`` orchestration: phases, gates, report, exit code.

Three entry shapes:

* ``--base-url http://host:port`` — measure a service somebody else is
  running: one phase (open-loop at ``--rate`` or closed-loop with
  ``--closed-loop N`` sessions), SLO-gated.
* ``--spawn`` — own the whole story: fork a ``repro serve`` child
  against a prebuilt cache with the chaos fault plan armed, run a
  **chaos** phase (steady persona mix that must stay >= 99%
  golden-correct on non-shed responses while blobs corrupt and the
  breaker cycles underneath) and a **saturation** phase (a zero-think
  closed-loop fleet sized several times the admission gate, which must
  drive real shedding — every shed carrying a parseable Retry-After),
  then SIGTERM the child and require a clean drain.
* ``--compare PREV --against CUR`` — no load at all: gate one existing
  ``LATENCY_*.json`` against another (CI's follow-up step compares the
  current run's trajectory to the previous green run on main).

``--workers N`` scales either load mode past the single-process client
ceiling: N processes each drive a deterministic shard of the persona
roster through their own keep-alive connection pools, spill exact
histograms, and the parent merges them (see :mod:`repro.loadgen.pool`).

Every load run writes ``LOADGEN_<yyyymmdd>.json`` plus the latency
trajectory ``LATENCY_<yyyymmdd>.json``; the structural gates, any
``--slo`` thresholds, and (with ``--compare``) the p99 drift gates
decide the exit code.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from repro import obs
from repro.loadgen.engine import (
    ClientStats,
    LoadEngine,
    PhaseSpec,
    discover_catalog,
)
from repro.loadgen.metrics import PhaseMetrics
from repro.loadgen.personas import DEFAULT_MIX
from repro.loadgen.pool import run_pool
from repro.loadgen.report import (
    GateResult,
    SloThresholds,
    build_report,
    loadgen_path,
    write_report,
)
from repro.loadgen.trajectory import (
    DEFAULT_P99_TOLERANCE,
    build_trajectory,
    compare_trajectories,
    latency_path,
    load_trajectory,
    write_trajectory,
)

__all__ = ["LoadgenOptions", "LoadgenResult", "run_loadgen"]

#: Chaos-phase correctness floor (the ISSUE's acceptance bar).
CHAOS_AVAILABILITY_FLOOR = 0.99

#: Saturation sizing: worker sessions per admission-gate slot
#: (inflight + queue).  Several times the gate guarantees shedding.
_SATURATION_PRESSURE = 12


@dataclass
class LoadgenOptions:
    """Parsed ``repro loadgen`` invocation."""

    seed: int = 7
    base_url: Optional[str] = None
    spawn: bool = False
    duration_seconds: Optional[float] = None
    rate: Optional[float] = None  # open loop when set
    closed_loop: Optional[int] = None  # closed-loop worker count
    mix: Mapping[str, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    slo: SloThresholds = field(default_factory=SloThresholds)
    report_path: Optional[str] = None
    quick: bool = False
    cache_dir: Optional[str] = None
    jobs: int = 2
    fault_plan: Optional[str] = None  # explicit plan file for the child
    no_faults: bool = False  # spawn a fault-free child
    timeout: float = 5.0
    workers: int = 1  # client processes (1 = in-process engine)
    keepalive: bool = True  # persistent HTTP/1.1 connections
    latency_out: Optional[str] = None  # LATENCY_<date>.json override
    compare: Optional[str] = None  # previous LATENCY file to gate against
    against: Optional[str] = None  # compare-only: current LATENCY file
    p99_tolerance: float = DEFAULT_P99_TOLERANCE


@dataclass
class LoadgenResult:
    """What ``run_loadgen`` hands back to the CLI."""

    ok: bool
    report: Dict[str, object]
    report_path: Optional[str]
    phases: List[PhaseMetrics]
    gates: List[GateResult]

    def render(self) -> str:
        lines: List[str] = []
        for phase in self.phases:
            quantiles = phase.latency.quantiles_ms()
            lines.append(
                f"[{phase.name}: {phase.requests} requests in "
                f"{phase.duration_seconds:.2f}s "
                f"({phase.throughput_rps():.0f} rps); "
                f"p50 {quantiles['p50_ms']:.1f}ms p99 {quantiles['p99_ms']:.1f}ms; "
                f"ok {phase.by_outcome['ok']} "
                f"304 {phase.by_outcome['not_modified']} "
                f"shed {phase.sheds} "
                f"drift {phase.body_drift}; "
                f"availability {phase.availability:.4f}]"
            )
        client = self.report.get("client")
        if isinstance(client, dict) and client.get("requests"):
            lines.append(
                f"[client: {client['connections_opened']} socket(s) for "
                f"{client['requests']} requests "
                f"({client['requests_on_reused']} on reused connections, "
                f"{client['stale_retries']} stale retries)]"
            )
        if isinstance(client, dict):
            transport = {
                name: client.get(name, 0)
                for name in ("resets", "stalled", "garbled", "truncated")
            }
            if any(transport.values()):
                lines.append(
                    "[transport faults observed: "
                    + ", ".join(
                        f"{name} {count}"
                        for name, count in transport.items() if count
                    )
                    + "]"
                )
        for gate in self.gates:
            marker = "PASS" if gate.passed else "FAIL"
            lines.append(
                f"  {marker} {gate.name}: measured {gate.measured:.4f} "
                f"vs {gate.threshold} ({gate.detail})"
            )
        lines.append(
            f"[loadgen: {'all gates green' if self.ok else 'GATE FAILURE'}"
            + (f"; report {self.report_path}" if self.report_path else "")
            + "]"
        )
        return "\n".join(lines)


def _parse_target(base_url: str) -> Tuple[str, int]:
    parts = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
    if parts.scheme not in ("http", ""):
        raise ValueError(f"only http targets are supported, got {base_url!r}")
    host = parts.hostname or "127.0.0.1"
    port = parts.port if parts.port is not None else 80
    return host, port


def _structural_gates(
    chaos: Optional[PhaseMetrics],
    saturation: Optional[PhaseMetrics],
    totals: PhaseMetrics,
    drain_code: Optional[int],
) -> List[GateResult]:
    """The spawn-mode contract, independent of any ``--slo`` flags."""
    gates: List[GateResult] = []
    if chaos is not None:
        gates.append(GateResult(
            name="chaos.availability",
            passed=chaos.availability >= CHAOS_AVAILABILITY_FLOOR,
            measured=chaos.availability,
            threshold=CHAOS_AVAILABILITY_FLOOR,
            detail="golden-correct 200s over non-shed, faults armed",
        ))
    if saturation is not None:
        gates.append(GateResult(
            name="saturation.sheds",
            passed=saturation.sheds >= 1,
            measured=float(saturation.sheds),
            threshold=1.0,
            detail="admission gate must actually shed under pressure",
        ))
        gates.append(GateResult(
            name="saturation.retry_after_seen",
            passed=saturation.retry_after_seen >= 1,
            measured=float(saturation.retry_after_seen),
            threshold=1.0,
            detail="sheds must carry a parseable Retry-After",
        ))
    gates.append(GateResult(
        name="retry_after.missing",
        passed=totals.retry_after_missing == 0,
        measured=float(totals.retry_after_missing),
        threshold=0.0,
        detail="every 503/504 must carry integer-seconds Retry-After",
    ))
    gates.append(GateResult(
        name="body_drift.total",
        passed=totals.body_drift == 0,
        measured=float(totals.body_drift),
        threshold=0.0,
        detail="no 200 body may differ from its pinned golden bytes",
    ))
    if drain_code is not None:
        gates.append(GateResult(
            name="serve.drain",
            passed=drain_code == 0,
            measured=float(drain_code),
            threshold=0.0,
            detail="SIGTERM drain must exit 0",
        ))
    return gates


@dataclass
class _DriveResult:
    """What the client side produced, whoever (engine or pool) drove it."""

    phases: List[PhaseMetrics]
    schedule_digests: List[Dict[str, object]]
    counters: Dict[str, float]
    client: ClientStats


def _drive(
    options: LoadgenOptions,
    tracer: obs.Tracer,
    host: str,
    port: int,
    catalog,
    specs: Sequence[PhaseSpec],
    expectations: Optional[Mapping[str, bytes]] = None,
) -> _DriveResult:
    """Run ``specs`` in order: in-process for ``--workers 1``, else the
    multi-process pool over sharded persona rosters."""
    if options.workers > 1:
        pooled = run_pool(
            host, port, catalog, options.seed, list(specs),
            workers=options.workers,
            expectations=expectations,
            timeout=options.timeout,
            keepalive=options.keepalive,
        )
        return _DriveResult(
            phases=pooled.phases,
            schedule_digests=pooled.schedule_digests,
            counters=pooled.counters,
            client=pooled.client,
        )
    engine = LoadEngine(
        host, port, catalog, options.seed,
        expectations=expectations, tracer=tracer,
        timeout=options.timeout, keepalive=options.keepalive,
    )
    phases = [engine.run_phase(spec) for spec in specs]
    return _DriveResult(
        phases=phases,
        schedule_digests=engine.schedule_digests(),
        counters={},
        client=engine.client_stats,
    )


def _run_base_url(options: LoadgenOptions, tracer: obs.Tracer) -> LoadgenResult:
    host, port = _parse_target(options.base_url or "")
    catalog = discover_catalog(host, port, timeout=options.timeout)
    duration = options.duration_seconds or (4.0 if options.quick else 15.0)
    if options.rate is not None:
        spec = PhaseSpec(
            name="steady", mode="open", duration_seconds=duration,
            workers=max(4, options.closed_loop or 8),
            mix=options.mix, rate=options.rate,
        )
    else:
        spec = PhaseSpec(
            name="steady", mode="closed", duration_seconds=duration,
            workers=options.closed_loop or 6, mix=options.mix,
        )
    print(f"[loadgen: {spec.mode}-loop against http://{host}:{port} "
          f"for {duration:.1f}s, seed {options.seed}, "
          f"{options.workers} client process(es), "
          f"keep-alive {'on' if options.keepalive else 'off'}]")
    driven = _drive(options, tracer, host, port, catalog, [spec])
    steady = driven.phases[0]
    totals = PhaseMetrics("totals")
    for phase in driven.phases:
        totals.merge(phase)
    gates = _structural_gates(None, None, totals, drain_code=None)
    gates.extend(options.slo.evaluate(steady, totals))
    return _finish(
        options, driven, gates, catalog,
        target=f"http://{host}:{port}", mode="base-url", tracer=tracer,
    )


def _run_spawn(options: LoadgenOptions, tracer: obs.Tracer) -> LoadgenResult:
    import tempfile

    from repro.core.experiments import SPECS
    from repro.loadgen import spawn as spawn_mod
    from repro.qa.goldens import GOLDEN_CONFIG
    from repro.store import default_cache_dir
    from repro.worldgen.config import WorldConfig

    config: WorldConfig = GOLDEN_CONFIG
    cache_dir = options.cache_dir or str(default_cache_dir())
    names = sorted(SPECS)

    print(f"[loadgen --spawn: ensuring {len(names)} result(s) at "
          f"{config.n_sites} sites x {config.n_days} days in {cache_dir}]")
    failures = spawn_mod.ensure_results(
        names, config, cache_dir, jobs=options.jobs
    )
    if failures:
        raise RuntimeError(f"could not populate results: {', '.join(failures)}")
    expectations = spawn_mod.pin_expectations(names, config, cache_dir)

    scratch = tempfile.mkdtemp(prefix="repro-loadgen-")
    if options.no_faults:
        plan_path = None
    elif options.fault_plan is not None:
        plan_path = options.fault_plan
    else:
        plan_path = str(spawn_mod.write_fault_plan(options.seed, scratch))
    access_log = f"{scratch}/serve_access.log"

    port = spawn_mod.free_port()
    command = spawn_mod.serve_command(
        port=port,
        cache_dir=cache_dir,
        quick=True,  # GOLDEN_CONFIG is the spawn scale by construction
        jobs=2,
        queue_depth=4,
        breaker_cooldown=0.4,
        fault_plan=plan_path,
        access_log=access_log,
    )
    server = spawn_mod.SpawnedServer(command, "127.0.0.1", port)
    plan_note = "no faults" if plan_path is None else f"fault plan {plan_path}"
    print(f"[loadgen --spawn: child on port {port} ({plan_note}); warming...]")
    server.start()
    drain_code: Optional[int] = None
    try:
        server.wait_ready()
        catalog = discover_catalog("127.0.0.1", port, timeout=options.timeout)
        total = options.duration_seconds or (4.0 if options.quick else 15.0)
        chaos_spec = PhaseSpec(
            name="chaos", mode="closed",
            duration_seconds=max(1.0, total * 0.7),
            workers=options.closed_loop or 6,
            mix=options.mix,
            min_requests=400,
        )
        gate_slots = 2 + 4  # the child's --jobs + --queue-depth
        saturation_spec = PhaseSpec(
            name="saturation", mode="closed",
            duration_seconds=max(1.0, total * 0.3),
            workers=gate_slots * _SATURATION_PRESSURE,
            mix=options.mix,
            think_scale=0.0,
            # Saturation measures refusals: don't wait sheds out, and
            # don't let client-side body validation throttle the offered
            # load below the gate's capacity (drift pinning stays on).
            retry_sheds=False,
            validate_bodies=False,
        )
        print(f"[chaos phase: {chaos_spec.workers} sessions, "
              f">= {chaos_spec.min_requests} requests; then saturation: "
              f"{saturation_spec.workers} zero-think sessions vs a "
              f"{gate_slots}-slot gate; {options.workers} client "
              f"process(es)]")
        driven = _drive(
            options, tracer, "127.0.0.1", port, catalog,
            [chaos_spec, saturation_spec], expectations=expectations,
        )
        chaos, saturation = driven.phases
    finally:
        drain_code = server.stop()
    totals = PhaseMetrics("totals")
    for phase in driven.phases:
        totals.merge(phase)
    gates = _structural_gates(chaos, saturation, totals, drain_code)
    gates.extend(options.slo.evaluate(chaos, totals))
    return _finish(
        options, driven, gates, catalog,
        target=f"http://127.0.0.1:{port} (spawned)", mode="spawn",
        tracer=tracer,
        extra={
            "spawn": {
                "command": command,
                "fault_plan": plan_path,
                "access_log": access_log,
                "drain_exit_code": drain_code,
                "cache_dir": cache_dir,
            },
        },
    )


def _run_compare_only(options: LoadgenOptions) -> LoadgenResult:
    """Pure file comparison: gate one LATENCY document against another."""
    try:
        current = load_trajectory(options.against or "")
        previous = load_trajectory(options.compare or "")
    except OSError as error:
        # A file you named but can't read is a usage problem, and the
        # CLI maps ValueError to the usage exit code.
        raise ValueError(f"cannot read trajectory: {error}") from None
    gates = compare_trajectories(
        current, previous, tolerance=options.p99_tolerance
    )
    report: Dict[str, object] = {
        "mode": "compare",
        "current": options.against,
        "previous": options.compare,
        "p99_tolerance": options.p99_tolerance,
        "gates": {
            "passed": all(gate.passed for gate in gates),
            "results": [gate.to_dict() for gate in gates],
        },
    }
    return LoadgenResult(
        ok=all(gate.passed for gate in gates),
        report=report,
        report_path=None,
        phases=[],
        gates=gates,
    )


def _finish(
    options: LoadgenOptions,
    driven: _DriveResult,
    gates: List[GateResult],
    catalog,
    *,
    target: str,
    mode: str,
    tracer: obs.Tracer,
    extra: Optional[Mapping[str, object]] = None,
) -> LoadgenResult:
    # The latency trajectory rides along with every load run, and its
    # drift gates (when --compare names a baseline) join the exit-code
    # decision like any structural gate.
    trajectory = build_trajectory(
        seed=options.seed,
        mode=mode,
        workers=options.workers,
        keepalive=options.keepalive,
        phases=driven.phases,
    )
    trajectory_target = options.latency_out or str(latency_path())
    write_trajectory(trajectory, trajectory_target)
    compared: Optional[str] = None
    if options.compare:
        previous = load_trajectory(options.compare)
        gates = list(gates) + compare_trajectories(
            trajectory, previous, tolerance=options.p99_tolerance
        )
        compared = options.compare
    with tracer._root_lock:
        counters = dict(tracer.root.counters)
    for name, value in driven.counters.items():
        counters[name] = counters.get(name, 0.0) + float(value)
    merged_extra: Dict[str, object] = {
        "client": driven.client.to_dict(),
        "pool": {
            "workers": options.workers,
            "keepalive": options.keepalive,
        },
        "trajectory": {
            "path": trajectory_target,
            "compared_against": compared,
            "p99_tolerance": options.p99_tolerance,
        },
    }
    if extra:
        merged_extra.update(dict(extra))
    report = build_report(
        seed=options.seed,
        target=target,
        mode=mode,
        phases=driven.phases,
        gates=gates,
        schedule_digests=driven.schedule_digests,
        catalog={
            "providers": list(catalog.providers),
            "days": catalog.days,
            "experiments": list(catalog.experiments),
            "default_k": catalog.default_k,
            "max_k": catalog.max_k,
        },
        tracer_counters=counters,
        slo=options.slo,
        extra=merged_extra,
    )
    path = options.report_path or str(loadgen_path())
    write_report(report, path)
    return LoadgenResult(
        ok=all(gate.passed for gate in gates),
        report=report,
        report_path=path,
        phases=driven.phases,
        gates=gates,
    )


def run_loadgen(options: LoadgenOptions) -> LoadgenResult:
    """Run one load-test invocation end to end; see the module docstring.

    Raises:
        ValueError: inconsistent options (no target, both targets, or a
          malformed compare-only invocation).
        RuntimeError: spawn-mode setup failures (results, readiness),
          or a wedged/failed worker process.
    """
    if options.against is not None:
        if options.compare is None:
            raise ValueError("--against requires --compare <previous.json>")
        if options.base_url or options.spawn:
            raise ValueError(
                "--against is a pure file comparison; drop --base-url/--spawn"
            )
        return _run_compare_only(options)
    if bool(options.base_url) == bool(options.spawn):
        raise ValueError("exactly one of --base-url or --spawn is required")
    if options.workers < 1:
        raise ValueError(f"workers must be >= 1, got {options.workers}")
    tracer = obs.Tracer()
    started = time.perf_counter()
    if options.spawn:
        result = _run_spawn(options, tracer)
    else:
        result = _run_base_url(options, tracer)
    result.report["wall_seconds"] = round(time.perf_counter() - started, 3)
    if result.report_path:
        write_report(result.report, result.report_path)
    return result
