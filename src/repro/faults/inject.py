"""The injection choke point: the ambient fault plan and its helpers.

Mirrors the :mod:`repro.obs` ambient-tracer design: production code calls
the module-level helpers unconditionally, and they cost one global load
plus an ``is None`` check when no plan is active.  Activating a plan
(:func:`activate` process-wide, or :func:`injecting` scoped) routes every
helper call into :meth:`~repro.faults.plan.FaultPlan.fire`.

Every fire is also counted into the active tracer (``faults.<site>``), so
chaos runs show their injections inline in span trees and the merged
manifest ``timings`` block.

This module imports only the standard library and :mod:`repro.obs`, so
the store and runner can call into it without import cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro import obs
from repro.faults.plan import FaultPlan, FaultRule

__all__ = [
    "InjectedFault",
    "activate",
    "active_plan",
    "injecting",
    "fire",
    "corrupt",
    "check_flaky",
]


class InjectedFault(RuntimeError):
    """Raised by injection sites that simulate a recoverable failure."""


_ACTIVE: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    """The process-wide active fault plan, or None."""
    return _ACTIVE


def activate(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` process-wide (None disarms); returns the previous
    plan so callers can restore it."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    return previous


@contextmanager
def injecting(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Activate ``plan`` for the duration of the block (tests, inline runs)."""
    previous = activate(plan)
    try:
        yield plan
    finally:
        activate(previous)


def fire(site: str, key: str, occurrence: Optional[int] = None
         ) -> Optional[FaultRule]:
    """Consult the active plan at ``site``; no-op (None) when disarmed.

    Fires count into the ambient tracer as ``faults.<site>``.
    """
    plan = _ACTIVE
    if plan is None:
        return None
    rule = plan.fire(site, key, occurrence)
    if rule is not None:
        obs.count(f"faults.{site}")
    return rule


def corrupt(blob: bytes) -> bytes:
    """Deterministically damage a payload: flip every bit of the last byte.

    Enough to break the store's SHA-256 header check without changing the
    blob's length, which is exactly the failure shape of a decayed or
    torn-but-published cache entry.
    """
    if not blob:
        return b"\xff"
    return blob[:-1] + bytes([blob[-1] ^ 0xFF])


def check_flaky(name: str, attempt: int) -> None:
    """Raise :class:`InjectedFault` when a flaky-first-attempt rule fires.

    Called by the runner at the top of each in-worker attempt; only the
    first attempt is eligible, so the retry path is guaranteed to see a
    clean second run.
    """
    if attempt != 1:
        return
    if fire("experiment.flaky_first_attempt", name) is not None:
        raise InjectedFault(
            f"injected experiment.flaky_first_attempt for {name!r}"
        )
