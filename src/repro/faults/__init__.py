"""repro.faults — deterministic fault injection for the pipeline.

See :mod:`repro.faults.plan` for the declarative, seeded fault plans and
:mod:`repro.faults.inject` for the ambient injection choke point the
store and runner consult.  ``repro chaos`` runs the experiment registry
under a plan and fails unless everything still completes golden-clean.
"""

from repro.faults.inject import (
    InjectedFault,
    activate,
    active_plan,
    check_flaky,
    corrupt,
    fire,
    injecting,
)
from repro.faults.plan import (
    SITES,
    FaultPlan,
    FaultRule,
    default_chaos_plan,
    default_serve_plan,
)

__all__ = [
    "SITES",
    "FaultPlan",
    "FaultRule",
    "default_chaos_plan",
    "default_serve_plan",
    "InjectedFault",
    "activate",
    "active_plan",
    "check_flaky",
    "corrupt",
    "fire",
    "injecting",
]
