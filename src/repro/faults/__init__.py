"""repro.faults — deterministic fault injection for the pipeline.

See :mod:`repro.faults.plan` for the declarative, seeded fault plans,
:mod:`repro.faults.inject` for the ambient injection choke point the
store and runner consult, and :mod:`repro.faults.netproxy` for the
transport-level chaos proxy (``net.*`` sites).  ``repro chaos`` runs the
experiment registry under a plan and fails unless everything still
completes golden-clean; ``repro chaos-net`` does the same for the
serving path behind the proxy.
"""

from repro.faults.inject import (
    InjectedFault,
    activate,
    active_plan,
    check_flaky,
    corrupt,
    fire,
    injecting,
)
from repro.faults.netproxy import NetProxy, decide_connection, digest_of_log
from repro.faults.plan import (
    DATA_SITES,
    NET_SITES,
    SITES,
    FaultPlan,
    FaultRule,
    connection_key,
    day_key,
    default_chaos_plan,
    default_data_plan,
    default_net_plan,
    default_serve_plan,
)

__all__ = [
    "SITES",
    "NET_SITES",
    "DATA_SITES",
    "FaultPlan",
    "FaultRule",
    "connection_key",
    "day_key",
    "default_chaos_plan",
    "default_serve_plan",
    "default_net_plan",
    "default_data_plan",
    "InjectedFault",
    "activate",
    "active_plan",
    "check_flaky",
    "corrupt",
    "fire",
    "injecting",
    "NetProxy",
    "decide_connection",
    "digest_of_log",
]
