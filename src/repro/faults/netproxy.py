"""A deterministic TCP chaos proxy for the serving path.

:class:`NetProxy` sits between a load generator and ``repro serve``,
forwarding bytes verbatim except where the active :class:`FaultPlan`
says otherwise.  Faults are decided *per connection, at accept time*:
the single accept loop assigns each connection a serial, and
:func:`decide_connection` consults the plan's ``net.*`` sites in a fixed
priority order with the serial's :func:`connection_key` — the first
site that fires claims the connection, and at most one fault lands per
connection so the fire accounting stays honest.

Determinism is inherited from the plan: decisions hash ``(seed, rule,
site, key, occurrence)`` and never touch a live RNG, so a sequential
driver (one request in flight, keep-alive off) produces the same serial
sequence, the same fires, and the same :func:`digest_of_log` on every
run with the same seed.  :meth:`NetProxy.replay_digest` re-runs the
decision procedure on a fresh copy of the plan and must match the
observed digest — the chaos-net gate enforces both.

Fault behaviors, in consult order:

* ``net.accept.reset`` — SO_LINGER(1, 0) close immediately after
  accept: the client sees a hard RST, usually before its request is
  even written.
* ``net.read.stall`` — the proxy sleeps ``delay_seconds`` before
  touching the request, simulating a stalled upstream read; a driver
  with a shorter client timeout observes it as a timeout.
* ``net.write.garble`` — the first response bytes (the status line) are
  bit-flipped before forwarding, so the client must reject the exchange
  as unparseable rather than trusting corrupted framing.
* ``net.write.truncate`` — the response headers are parsed just enough
  to find ``Content-Length``; the proxy forwards the headers plus half
  the body, then closes.  A correct client detects the short read
  against the declared length — never a silent short body.
* ``net.close.mid_response`` — the connection closes after the status
  line and a fragment of the headers: EOF where headers should be.
* ``net.write.split`` — the response is forwarded in tiny flushed
  chunks (harmless; proves the client reassembles fragmented reads).

Everything here is the standard library; the module mirrors
:mod:`repro.faults.inject`'s accounting (``faults.<site>`` counters in
the ambient tracer plus the plan's own ``fired`` tally).
"""

from __future__ import annotations

import hashlib
import socket
import struct
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.faults.plan import (
    NET_SITES,
    FaultPlan,
    FaultRule,
    connection_key,
)

__all__ = [
    "NET_SITES",
    "NetProxy",
    "decide_connection",
    "digest_of_log",
]

#: Fallback stall length when a ``net.read.stall`` rule carries no
#: ``delay_seconds`` of its own.
DEFAULT_STALL_SECONDS = 2.5

#: Bytes of the response forwarded before a mid-response close — enough
#: for the status line plus a header fragment, never the blank line.
_MID_RESPONSE_BYTES = 48

#: Leading response bytes bit-flipped by ``net.write.garble``.
_GARBLE_BYTES = 4

#: Chunk size for ``net.write.split`` forwarding.
_SPLIT_CHUNK = 7

_RECV_SIZE = 65536


def decide_connection(
    plan: Optional[FaultPlan], serial: int
) -> Optional[Tuple[str, FaultRule]]:
    """Consult the plan once per ``net.*`` site for one connection.

    Sites are consulted in :data:`NET_SITES` order and the first fire
    wins — the connection carries at most one fault.  Sites holding a
    rule that matches this serial *exactly* are consulted before the
    wildcard priority order: a pinned coverage serial (the default
    plan guarantees each site one) can therefore never be stolen by a
    higher-priority site's background rule.  Pure given the plan
    state, which is what makes :meth:`NetProxy.replay_digest`
    possible.
    """
    if plan is None:
        return None
    key = connection_key(serial)
    pinned = [
        rule.site
        for rule in plan.rules
        if rule.match == key and rule.site in NET_SITES
    ]
    order = list(dict.fromkeys(pinned))
    order += [site for site in NET_SITES if site not in order]
    for site in order:
        rule = plan.fire(site, key)
        if rule is not None:
            return site, rule
    return None


def digest_of_log(entries: Sequence[Dict[str, object]]) -> str:
    """The fault-sequence digest: sha256 over ``serial:site`` lines.

    Entries are sorted by serial (accept order), so the digest is
    insensitive to how worker threads interleaved afterwards.
    """
    lines = sorted(
        f"{entry['serial']}:{entry['site']}" for entry in entries
    )
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def _reset_close(sock: socket.socket) -> None:
    """Close with SO_LINGER(1, 0): the peer gets an RST, not a FIN."""
    try:
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


def _close_quietly(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        pass


def _shutdown_close(sock: socket.socket) -> None:
    """Shutdown both directions, then close.

    The explicit ``shutdown`` matters: the request pump thread may be
    blocked in ``recv`` on the same socket, and on Linux a plain
    ``close`` leaves the kernel socket alive (no FIN!) until that recv
    returns.  ``shutdown`` sends the FIN immediately and wakes the
    blocked thread, so a truncating or mid-response fault is observed
    by the client as a prompt EOF rather than a silent stall.
    """
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    _close_quietly(sock)


def _garble(blob: bytes) -> bytes:
    head = bytes(b ^ 0xFF for b in blob[:_GARBLE_BYTES])
    return head + blob[_GARBLE_BYTES:]


class NetProxy:
    """Threaded TCP proxy with plan-driven fault injection.

    Args:
        upstream_host/upstream_port: where clean traffic is forwarded.
        plan: the fault plan consulted per connection; None proxies
          everything verbatim (still assigning serials).
        host/port: listen address; port 0 picks a free port, readable
          as :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        plan: Optional[FaultPlan] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.plan = plan
        self.host = host
        self._requested_port = port
        self.port: Optional[int] = None
        #: Accept-ordered fire log: ``{"serial", "site", "match"}`` dicts.
        self.fault_log: List[Dict[str, object]] = []
        self.connections = 0
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle.

    def start(self) -> None:
        self._listener = socket.create_server(
            (self.host, self._requested_port)
        )
        self._listener.settimeout(0.2)
        self.port = self._listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="netproxy-accept", daemon=True
        )
        self._accept_thread.start()

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            _close_quietly(self._listener)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    # ------------------------------------------------------------------
    # Accounting.

    def fired_snapshot(self) -> Dict[str, int]:
        """Per-site fire counts (the plan's tally, net sites only)."""
        if self.plan is None:
            return {}
        return {
            site: count
            for site, count in self.plan.fired_snapshot().items()
            if site.startswith("net.")
        }

    def fault_digest(self) -> str:
        """Digest of the observed fire sequence."""
        with self._lock:
            return digest_of_log(self.fault_log)

    def replay_digest(self) -> str:
        """Digest from re-deciding every accepted serial on a fresh plan.

        Must equal :meth:`fault_digest` — a cheap in-run proof that the
        decision procedure consulted no state outside (seed, serial).
        """
        if self.plan is None:
            return digest_of_log([])
        fresh = FaultPlan(rules=list(self.plan.rules), seed=self.plan.seed)
        entries = []
        with self._lock:
            total = self.connections
        for serial in range(total):
            decision = decide_connection(fresh, serial)
            if decision is not None:
                entries.append({"serial": serial, "site": decision[0]})
        return digest_of_log(entries)

    # ------------------------------------------------------------------
    # Data path.

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._lock:
                serial = self.connections
                self.connections += 1
                decision = decide_connection(self.plan, serial)
                if decision is not None:
                    site, rule = decision
                    self.fault_log.append(
                        {"serial": serial, "site": site, "match": rule.match}
                    )
            if decision is not None:
                obs.count(f"faults.{decision[0]}")
                if decision[0] == "net.accept.reset":
                    _reset_close(client)
                    continue
            worker = threading.Thread(
                target=self._serve_connection,
                args=(client, serial, decision),
                name=f"netproxy-conn-{serial}",
                daemon=True,
            )
            worker.start()

    def _serve_connection(
        self,
        client: socket.socket,
        serial: int,
        decision: Optional[Tuple[str, FaultRule]],
    ) -> None:
        site = decision[0] if decision else None
        rule = decision[1] if decision else None
        try:
            upstream = socket.create_connection(
                (self.upstream_host, self.upstream_port), timeout=10.0
            )
        except OSError:
            _close_quietly(client)
            return
        try:
            client.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        try:
            if site == "net.read.stall":
                assert rule is not None
                time.sleep(rule.delay_seconds or DEFAULT_STALL_SECONDS)
            pump = threading.Thread(
                target=self._pump_request,
                args=(client, upstream),
                name=f"netproxy-pump-{serial}",
                daemon=True,
            )
            pump.start()
            if site == "net.write.garble":
                self._forward_garbled(upstream, client)
            elif site == "net.write.truncate":
                self._forward_truncated(upstream, client)
            elif site == "net.close.mid_response":
                self._forward_partial_headers(upstream, client)
            else:
                self._forward(
                    upstream, client, split=(site == "net.write.split")
                )
        except OSError:
            pass
        finally:
            _shutdown_close(upstream)
            _shutdown_close(client)

    def _pump_request(
        self, client: socket.socket, upstream: socket.socket
    ) -> None:
        """Client → upstream, verbatim, until EOF or error."""
        try:
            while True:
                chunk = client.recv(_RECV_SIZE)
                if not chunk:
                    break
                upstream.sendall(chunk)
            upstream.shutdown(socket.SHUT_WR)
        except OSError:
            pass

    def _forward(
        self, upstream: socket.socket, client: socket.socket, split: bool
    ) -> None:
        """Upstream → client; ``split`` forwards in tiny flushed chunks."""
        while True:
            chunk = upstream.recv(_RECV_SIZE)
            if not chunk:
                break
            if split:
                for offset in range(0, len(chunk), _SPLIT_CHUNK):
                    client.sendall(chunk[offset:offset + _SPLIT_CHUNK])
                    time.sleep(0.001)
            else:
                client.sendall(chunk)

    def _forward_garbled(
        self, upstream: socket.socket, client: socket.socket
    ) -> None:
        first = upstream.recv(_RECV_SIZE)
        if first:
            client.sendall(_garble(first))
        self._forward(upstream, client, split=False)

    def _forward_partial_headers(
        self, upstream: socket.socket, client: socket.socket
    ) -> None:
        data = b""
        while len(data) < _MID_RESPONSE_BYTES:
            chunk = upstream.recv(_RECV_SIZE)
            if not chunk:
                break
            data += chunk
        if data:
            client.sendall(data[:_MID_RESPONSE_BYTES])
        # fall through to close: EOF where the rest of the headers
        # should have been.

    def _forward_truncated(
        self, upstream: socket.socket, client: socket.socket
    ) -> None:
        """Forward full headers and half the declared body, then close."""
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = upstream.recv(_RECV_SIZE)
            if not chunk:
                if data:
                    client.sendall(data)
                return
            data += chunk
        head, _, body = data.partition(b"\r\n\r\n")
        head += b"\r\n\r\n"
        length = _content_length(head)
        if length is None:
            # No declared length to betray — forward what we have and
            # close early anyway.
            client.sendall(data)
            return
        while len(body) < length:
            chunk = upstream.recv(_RECV_SIZE)
            if not chunk:
                break
            body += chunk
        client.sendall(head + body[: len(body) // 2])


def _content_length(head: bytes) -> Optional[int]:
    for line in head.split(b"\r\n"):
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            try:
                return int(value.strip())
            except ValueError:
                return None
    return None
