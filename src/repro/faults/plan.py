"""Fault plans: declarative, seeded, deterministic failure schedules.

A :class:`FaultPlan` is a JSON-serializable list of :class:`FaultRule`
entries, each naming an injection *site* (one of :data:`SITES`), a glob
``match`` over the key presented at that site (an artifact name such as
``traffic/day-003`` for store sites, an experiment id for worker sites),
a ``probability``, and a ``max_fires`` budget.

Determinism is the whole point — chaos runs must replay bit-for-bit:

* Probabilistic decisions never consult a live RNG.  Each decision hashes
  ``(plan seed, rule index, site, key, occurrence)`` and compares the
  resulting uniform value against ``probability``, so the same plan makes
  the same calls regardless of process scheduling or call interleaving
  from *other* sites.
* The occurrence index is a per-process counter per ``(rule, key)`` for
  store sites, and the explicit submission number for worker sites (the
  supervisor passes it in), so a one-shot crash rule fires on the first
  submission and stays quiet on the resubmission — the recovery path is
  guaranteed to get a clean run.

Plans travel to pool/supervised worker processes as JSON through the
worker initializer; fire counters are therefore per-process, and the run
manifest aggregates them across workers.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SITES",
    "NET_SITES",
    "DATA_SITES",
    "FaultRule",
    "FaultPlan",
    "default_chaos_plan",
    "default_serve_plan",
    "default_net_plan",
    "default_data_plan",
    "connection_key",
    "day_key",
]

#: The transport-level sites consulted by :mod:`repro.faults.netproxy`.
#: They key on connection serials (``conn-000042``) assigned in accept
#: order, not on paths — the proxy never needs to understand the request
#: to break the wire under it.
NET_SITES: Tuple[str, ...] = (
    "net.accept.reset",
    "net.read.stall",
    "net.write.garble",
    "net.write.truncate",
    "net.close.mid_response",
    "net.write.split",
)

#: The data-plane sites consulted by :mod:`repro.ranking.ingest` when a
#: provider's published day list is fetched.  They key on
#: ``<provider>/day-<ddd>`` (see :func:`day_key`) so every decision is a
#: pure function of (seed, provider, day) — the ingestion layer consults
#: each key exactly once per feed, regardless of request interleaving.
DATA_SITES: Tuple[str, ...] = (
    "data.provider.retired",
    "data.day.missing",
    "data.day.stale_repeat",
    "data.day.truncated",
    "data.day.duplicate_ranks",
    "data.day.schema_drift",
)

#: Every injection site wired into the pipeline.  ``store.*`` sites key on
#: artifact names, ``worker.*`` and ``experiment.*`` sites on experiment
#: ids, ``serve.*`` sites on HTTP request paths, ``net.*`` sites on proxy
#: connection serials, and ``data.*`` sites on provider-day keys.
SITES: Tuple[str, ...] = (
    "store.read.corrupt",
    "store.read.slow",
    "store.write.enospc",
    "store.write.partial",
    "worker.crash",
    "worker.hang",
    "experiment.flaky_first_attempt",
    "serve.request.error",
) + NET_SITES + DATA_SITES


@dataclass(frozen=True)
class FaultRule:
    """One fault source.

    Attributes:
        site: injection site, one of :data:`SITES`.
        match: glob matched (case-sensitively) against the site's key.
        probability: chance of firing per eligible occurrence, decided by
          the plan's deterministic hash — 1.0 fires always.
        max_fires: occurrence budget.  For store sites this caps fires per
          process; for worker sites it caps fires per *submission index*,
          which is what lets a killed worker's resubmission run clean.
        min_occurrence: first eligible occurrence index (default 0).  A
          rule with ``min_occurrence=1`` lets the *first* consult per key
          pass clean and becomes eligible from the second on — which is
          how a serving-path plan armed at boot spares the warmup read
          (one read per results key) and fires under live traffic instead.
        delay_seconds: sleep length for ``worker.hang`` (default 3600 —
          anything longer than any sane deadline) and ``store.read.slow``
          (default 0.25 — long enough to trip a serving-path breaker).
        exit_code: process exit status for ``worker.crash``.
        fraction: for ``data.day.truncated``, the fraction of the day's
          list the degraded feed keeps (default 0.4 when unset).
    """

    site: str
    match: str = "*"
    probability: float = 1.0
    max_fires: int = 1
    delay_seconds: Optional[float] = None
    exit_code: int = 3
    min_occurrence: int = 0
    fraction: Optional[float] = None

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; choose from {', '.join(SITES)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.max_fires < 0:
            raise ValueError(f"max_fires must be >= 0, got {self.max_fires}")
        if self.min_occurrence < 0:
            raise ValueError(
                f"min_occurrence must be >= 0, got {self.min_occurrence}"
            )
        if self.fraction is not None and not 0.0 < self.fraction <= 1.0:
            raise ValueError(
                f"fraction must be in (0, 1], got {self.fraction}"
            )

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "site": self.site,
            "match": self.match,
            "probability": self.probability,
            "max_fires": self.max_fires,
        }
        if self.delay_seconds is not None:
            payload["delay_seconds"] = self.delay_seconds
        if self.exit_code != 3:
            payload["exit_code"] = self.exit_code
        if self.min_occurrence:
            payload["min_occurrence"] = self.min_occurrence
        if self.fraction is not None:
            payload["fraction"] = self.fraction
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultRule":
        return cls(
            site=str(payload["site"]),
            match=str(payload.get("match", "*")),
            probability=float(payload.get("probability", 1.0)),
            max_fires=int(payload.get("max_fires", 1)),
            delay_seconds=(
                None if payload.get("delay_seconds") is None
                else float(payload["delay_seconds"])  # type: ignore[arg-type]
            ),
            exit_code=int(payload.get("exit_code", 3)),
            min_occurrence=int(payload.get("min_occurrence", 0)),
            fraction=(
                None if payload.get("fraction") is None
                else float(payload["fraction"])  # type: ignore[arg-type]
            ),
        )


class FaultPlan:
    """A seeded set of fault rules plus per-process fire accounting.

    Args:
        rules: the fault sources, consulted in order (first match wins).
        seed: feeds the deterministic probability hash.
    """

    def __init__(self, rules: Sequence[FaultRule] = (), seed: int = 0) -> None:
        self.rules: List[FaultRule] = list(rules)
        self.seed = int(seed)
        #: Fires per site, in this process.
        self.fired: Dict[str, int] = {}
        self._occurrences: Dict[Tuple[int, str], int] = {}

    # ------------------------------------------------------------------
    # The decision procedure.

    def _decide(self, rule_index: int, site: str, key: str, occurrence: int,
                probability: float) -> bool:
        if probability >= 1.0:
            return True
        if probability <= 0.0:
            return False
        token = f"{self.seed}:{rule_index}:{site}:{key}:{occurrence}"
        digest = hashlib.sha256(token.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2**64 < probability

    def fire(self, site: str, key: str, occurrence: Optional[int] = None
             ) -> Optional[FaultRule]:
        """Consult the plan at an injection site; returns the firing rule.

        Args:
            site: one of :data:`SITES`.
            key: the artifact name or experiment id at the site.
            occurrence: explicit occurrence index (worker sites pass the
              zero-based submission number); None uses — and advances — the
              per-process counter for the matching rule.

        Returns:
            The first matching rule whose budget and probability allow a
            fire, or None.  Fires are tallied in :attr:`fired`.

        Raises:
            ValueError: for a site name not in :data:`SITES`.  A typo'd
              consult site would otherwise just never fire — silently
              disarming whatever chaos coverage depended on it.
        """
        if site not in SITES:
            raise ValueError(
                f"unknown fault site {site!r}; choose from {', '.join(SITES)}"
            )
        for index, rule in enumerate(self.rules):
            if rule.site != site or not fnmatchcase(key, rule.match):
                continue
            if occurrence is None:
                slot = (index, key)
                occ = self._occurrences.get(slot, 0)
                self._occurrences[slot] = occ + 1
            else:
                occ = occurrence
            if occ < rule.min_occurrence:
                continue
            if occ >= rule.min_occurrence + rule.max_fires:
                continue
            if not self._decide(index, site, key, occ, rule.probability):
                continue
            self.fired[site] = self.fired.get(site, 0) + 1
            return rule
        return None

    def fired_snapshot(self) -> Dict[str, int]:
        """A copy of the per-site fire counts (for payload deltas)."""
        return dict(self.fired)

    # ------------------------------------------------------------------
    # Serialization.

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        rules: List[FaultRule] = []
        for index, raw in enumerate(payload.get("rules", [])):  # type: ignore[union-attr]
            try:
                rules.append(FaultRule.from_dict(raw))
            except (KeyError, TypeError, ValueError) as exc:
                # Fail fast at plan-load time, naming the offending rule —
                # a bad rule that slipped through would never fire and the
                # run would silently lose its intended fault coverage.
                raise ValueError(f"fault plan rule #{index}: {exc}") from exc
        return cls(
            rules=rules,
            seed=int(payload.get("seed", 0)),  # type: ignore[arg-type]
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


def _shuffled(names: Sequence[str], seed: int) -> List[str]:
    """Names in a deterministic seed-dependent order (no live RNG)."""
    return sorted(
        names,
        key=lambda name: hashlib.sha256(f"{seed}:{name}".encode("utf-8")).hexdigest(),
    )


def default_chaos_plan(
    seed: int, names: Sequence[str], hang_seconds: float = 3600.0
) -> FaultPlan:
    """The built-in ``repro chaos`` plan: one of everything on the
    runner path (the serving-path sites belong to
    :func:`default_serve_plan`).

    Injects exactly one corruption, one ENOSPC, one partial write, one
    worker crash, one worker hang, and one flaky first attempt, with the
    crash/hang/flaky victims drawn deterministically (by seed) from
    ``names`` so repeated soaks with different seeds rotate coverage.

    Args:
        seed: plan seed; also picks the victim experiments.
        names: the experiment ids the chaos run will execute.
        hang_seconds: sleep injected by the hang rule — set it comfortably
          above the runner deadline so the timeout path actually trips.
    """
    victims = _shuffled(names, seed) or ["*"]
    pick = lambda i: victims[i % len(victims)]  # noqa: E731
    return FaultPlan(
        rules=[
            FaultRule("store.read.corrupt", match="traffic/*"),
            FaultRule("store.write.enospc", match="metrics/*"),
            FaultRule("store.write.partial", match="providers/*"),
            FaultRule("worker.crash", match=pick(0)),
            FaultRule("worker.hang", match=pick(1), delay_seconds=hang_seconds),
            FaultRule("experiment.flaky_first_attempt", match=pick(2)),
        ],
        seed=seed,
    )


def default_serve_plan(
    seed: int,
    slow_seconds: float = 0.15,
    warmup_reads: int = 0,
    error_probability: float = 1.0,
) -> FaultPlan:
    """The built-in serving-path fault plan (``--selftest`` and loadgen).

    Per results key, the first eligible live read is injected slow *and*
    corrupt (``max_fires`` budgets are per ``(rule, key)``), so under
    traffic the service must quarantine the blob, trip its circuit breaker
    on the consecutive failures, answer from last-known-good while open,
    repair the store copy, and re-close the breaker once every key's fault
    budget is spent.  Requests on the lists surface may also take an
    injected internal error, exercising the 5xx accounting path.

    Args:
        seed: plan seed (decides only probabilistic rules — the store
          rules are deterministic with probability 1 — and keeps replay
          commands self-describing).
        slow_seconds: injected read latency; keep it above the breaker's
          slow-read threshold and well below the request deadline.
        warmup_reads: reads per results key to let pass clean before the
          store rules arm (``min_occurrence``).  The selftest activates
          the plan *after* warmup and keeps the default 0; ``repro
          loadgen --spawn`` arms the plan at child boot and passes 1 so
          warmup's single read per key succeeds and the faults land under
          live traffic instead.
        error_probability: chance each lists path takes one injected
          internal error on its first eligible request.  The selftest
          sweeps two lists paths and keeps 1.0; a load generator sweeping
          dozens of distinct paths lowers this so injected 5xx volume
          stays inside its availability budget.
    """
    return FaultPlan(
        rules=[
            FaultRule("store.read.slow", match="results/*",
                      delay_seconds=slow_seconds, min_occurrence=warmup_reads),
            FaultRule("store.read.corrupt", match="results/*",
                      min_occurrence=warmup_reads),
            FaultRule("serve.request.error", match="/v1/lists/*",
                      probability=error_probability),
        ],
        seed=seed,
    )


def connection_key(serial: int) -> str:
    """The key a ``net.*`` site consults for connection ``serial``.

    Connection serials are assigned by the proxy's single accept loop in
    accept order, so under a sequential driver the whole key sequence —
    and with it every fault decision — is a pure function of the seed.
    """
    return f"conn-{serial:06d}"


#: ``(site, pinned serial, background probability)`` for the default net
#: plan.  Each site gets one probability-1.0 rule pinned to a distinct
#: early connection serial (guaranteed coverage even in a ``--quick``
#: run) plus a low-probability wildcard rule that keeps faults landing
#: throughout the run.  Background probabilities are budgeted so that a
#: four-attempt client retry loop almost never exhausts on transport
#: faults alone — the chaos-net gate's >= 99% availability floor.
_NET_PLAN_SHAPE: Tuple[Tuple[str, int, float], ...] = (
    ("net.accept.reset", 5, 0.03),
    ("net.read.stall", 11, 0.02),
    ("net.write.garble", 17, 0.03),
    ("net.write.truncate", 23, 0.03),
    ("net.close.mid_response", 29, 0.03),
    ("net.write.split", 35, 0.10),
)


def default_net_plan(seed: int, stall_seconds: float = 2.5) -> FaultPlan:
    """The built-in transport chaos plan (``repro chaos-net``).

    Covers every ``net.*`` site with a pinned guaranteed fire on an
    early connection plus seeded low-probability background fires.
    Because the proxy presents each connection serial exactly once, the
    per-``(rule, key)`` ``max_fires`` budget never limits wildcard rules
    here — probability alone sets the background fault rate.

    Args:
        seed: plan seed; decides the background fires.
        stall_seconds: sleep injected by ``net.read.stall`` — keep it
          above the driving client's timeout so a stall is *observed* as
          a stall (a client timeout plus retry), not absorbed as jitter.
    """
    rules: List[FaultRule] = []
    for site, serial, probability in _NET_PLAN_SHAPE:
        delay = stall_seconds if site == "net.read.stall" else None
        rules.append(
            FaultRule(site, match=connection_key(serial), delay_seconds=delay)
        )
        rules.append(
            FaultRule(site, probability=probability, max_fires=1,
                      delay_seconds=delay)
        )
    return FaultPlan(rules=rules, seed=seed)


def day_key(provider: str, day: int) -> str:
    """The key a ``data.*`` site consults for one published provider day.

    The ingestion layer resolves each provider's days strictly in order
    and consults each key exactly once, so every data-fault decision is a
    pure function of ``(seed, provider, day)`` — independent of request
    interleaving on the serving side.
    """
    return f"{provider}/day-{day:03d}"


#: ``(site, provider slot, day position)`` for the pinned rules of the
#: default data plan.  Positions are fractions of the stream length,
#: mapped to concrete days at plan-build time so every site is guaranteed
#: to fire once whatever ``n_days`` is.  Day 0 is never faulted — the
#: ingestion layer treats it as the bootstrap day (see
#: :mod:`repro.ranking.ingest`) so carry-forward always has a source.
_DATA_PLAN_SHAPE: Tuple[Tuple[str, int, float], ...] = (
    ("data.day.stale_repeat", 0, 0.25),
    ("data.day.missing", 1, 0.35),
    ("data.day.duplicate_ranks", 2, 0.50),
    ("data.day.truncated", 1, 0.65),
    ("data.day.schema_drift", 2, 0.80),
    ("data.provider.retired", 0, 0.90),
)

#: Background probabilities per recoverable ``data.*`` site.  Budgeted so
#: a provider essentially never loses more consecutive days than the
#: default carry-forward bound; ``data.provider.retired`` gets no
#: background rule — retirement is a scripted, one-way event (the Alexa
#: shutdown), not recurring noise.
_DATA_BACKGROUND: Tuple[Tuple[str, float], ...] = (
    ("data.day.missing", 0.03),
    ("data.day.stale_repeat", 0.03),
    ("data.day.truncated", 0.03),
    ("data.day.duplicate_ranks", 0.03),
    ("data.day.schema_drift", 0.03),
)


def default_data_plan(
    seed: int,
    n_days: int,
    providers: Sequence[str] = ("alexa", "umbrella", "majestic"),
    truncate_fraction: float = 0.4,
) -> FaultPlan:
    """The built-in data-plane chaos plan (``repro chaos-data``).

    Covers every ``data.*`` site with one pinned probability-1.0 fire on
    a distinct (provider, day) key, plus seeded low-probability
    background fires per provider for the recoverable sites.  Provider
    retirement is pinned late in the stream (the Alexa shutdown pattern:
    the provider publishes normally, then disappears for good) and never
    appears as a background rule.

    Args:
        seed: plan seed; decides only the background fires.
        n_days: length of the provider streams the plan will run over —
          pins land inside ``[1, n_days - 1]``.
        providers: provider names to degrade, in pin-slot order.
        truncate_fraction: fraction of the list kept by a truncation.
    """
    if n_days < 6:
        raise ValueError(f"default data plan needs n_days >= 6, got {n_days}")
    if not providers:
        raise ValueError("default data plan needs at least one provider")
    last = n_days - 1
    rules: List[FaultRule] = []
    pinned_keys = set()
    for site, slot, position in _DATA_PLAN_SHAPE:
        provider = providers[slot % len(providers)]
        day = max(1, min(last, round(position * last)))
        key = day_key(provider, day)
        while key in pinned_keys:  # one fault per (provider, day)
            day = day + 1 if day < last else 1
            key = day_key(provider, day)
        pinned_keys.add(key)
        fraction = truncate_fraction if site == "data.day.truncated" else None
        rules.append(FaultRule(site, match=key, fraction=fraction))
    for provider in providers:
        for site, probability in _DATA_BACKGROUND:
            fraction = truncate_fraction if site == "data.day.truncated" else None
            rules.append(
                FaultRule(site, match=f"{provider}/*",
                          probability=probability, max_fires=1,
                          fraction=fraction)
            )
    return FaultPlan(rules=rules, seed=seed)
