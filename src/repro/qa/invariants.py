"""Metamorphic invariants over the whole pipeline.

Goldens pin concrete numbers; invariants pin *relationships* that must
survive any refactor regardless of what the numbers are: determinism
across store hydration, metric symmetries, sign flips under reversal,
idempotence of normalization, monotonicity of rankings under traffic
scaling, and truncation consistency across the paper's magnitude cuts.

The module is split in two layers:

* **Pure property helpers** (``*_violations`` functions) that take plain
  data and return human-readable violation strings.  The Hypothesis suite
  (``tests/qa/test_invariants.py``) drives these with generated inputs.
* **The registry** (:data:`INVARIANTS`) — declarative
  :class:`Invariant` rows whose checks derive deterministic inputs from a
  live :class:`~repro.core.pipeline.ExperimentContext` and call the same
  helpers.  ``repro verify-invariants`` (and a parametrized pytest) runs
  every row.

Both layers report violations rather than raising, so one broken property
never hides the rest.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.cdn.filters import FINAL_SEVEN
from repro.core.normalize import normalize_strings
from repro.core.pipeline import ExperimentContext, clear_contexts, experiment_context
from repro.core.similarity import (
    jaccard_index,
    pairwise_jaccard,
    rank_correlation_of_lists,
)
from repro.weblib.idna import IdnaError, to_ascii
from repro.weblib.psl import PublicSuffixList, default_psl
from repro.worldgen.config import WorldConfig

__all__ = [
    "Invariant",
    "InvariantOutcome",
    "INVARIANTS",
    "run_invariants",
    "jaccard_table_violations",
    "spearman_reversal_violations",
    "relabel_invariance_violations",
    "normalize_idempotence_violations",
    "scaling_rank_violations",
    "prefix_violations",
]


# ---------------------------------------------------------------------------
# Pure property helpers (Hypothesis-friendly).


def jaccard_table_violations(lists: Dict[str, Sequence[int]]) -> List[str]:
    """Violations of Jaccard symmetry/bounds/self-similarity.

    For any family of lists the pairwise table must be symmetric, every
    value must lie in [0, 1], and the diagonal must be exactly 1.
    """
    table = pairwise_jaccard(lists)
    violations: List[str] = []
    for (a, b), value in table.items():
        if not 0.0 <= value <= 1.0:
            violations.append(f"jaccard({a},{b})={value} outside [0,1]")
        if a == b and value != 1.0:
            violations.append(f"self-jaccard({a})={value} != 1")
        if table[(b, a)] != value:
            violations.append(f"jaccard({a},{b})={value} != jaccard({b},{a})")
    return violations


def spearman_reversal_violations(ranking: Sequence[int], tol: float = 1e-12) -> List[str]:
    """Violations of Spearman self-correlation = 1 and sign flip = -1.

    A ranked list correlates perfectly with itself and anti-perfectly
    with its own reversal (intersection is total in both cases).
    """
    violations: List[str] = []
    if len(ranking) < 2:
        return violations
    ranking = list(ranking)
    rho_self = rank_correlation_of_lists(ranking, ranking).rho
    if abs(rho_self - 1.0) > tol:
        violations.append(f"self-spearman={rho_self} != 1")
    rho_rev = rank_correlation_of_lists(ranking, ranking[::-1]).rho
    if abs(rho_rev + 1.0) > tol:
        violations.append(f"reversed-spearman={rho_rev} != -1")
    return violations


def relabel_invariance_violations(
    list_a: Sequence[int], list_b: Sequence[int]
) -> List[str]:
    """Violations of invariance under monotone relabeling of domain ids.

    Jaccard and intersection-Spearman depend only on membership and
    positions, never on the ids themselves, so any strictly monotone
    injective relabeling must preserve both bit-for-bit.
    """

    def relabel(x: int) -> int:
        return 2 * int(x) + 5

    a2 = [relabel(x) for x in list_a]
    b2 = [relabel(x) for x in list_b]
    violations: List[str] = []
    jj, jj2 = jaccard_index(list_a, list_b), jaccard_index(a2, b2)
    if jj != jj2:
        violations.append(f"jaccard changed under relabel: {jj} -> {jj2}")
    rho = rank_correlation_of_lists(list_a, list_b).rho
    rho2 = rank_correlation_of_lists(a2, b2).rho
    if not (np.isnan(rho) and np.isnan(rho2)) and rho != rho2:
        violations.append(f"spearman changed under relabel: {rho} -> {rho2}")
    return violations


def normalize_idempotence_violations(
    entries: Sequence[str], psl: Optional[PublicSuffixList] = None
) -> List[str]:
    """Violations of normalization idempotence.

    ``normalize_strings`` outputs registrable domains; feeding those back
    through must be the identity (same domains, ranks 1..n), and the PSL's
    ``registrable_domain`` must be a fixed point on its own outputs.
    """
    psl = psl if psl is not None else default_psl()
    violations: List[str] = []
    domains, _ = normalize_strings(entries, psl=psl)
    again, ranks = normalize_strings(domains, psl=psl)
    if again != domains:
        violations.append(
            f"normalize_strings not idempotent: {len(domains)} -> {len(again)} entries"
        )
    elif ranks != list(range(1, len(domains) + 1)):
        violations.append("re-normalization perturbed ranks")
    for domain in domains:
        fixed = psl.registrable_domain(domain)
        if fixed != domain:
            violations.append(f"registrable_domain({domain}) = {fixed} not a fixed point")
    return violations


def idna_idempotence_violations(names: Sequence[str]) -> List[str]:
    """Violations of ``to_ascii`` idempotence on encodable names."""
    violations: List[str] = []
    for name in names:
        try:
            once = to_ascii(name)
        except IdnaError:
            continue
        try:
            twice = to_ascii(once)
        except IdnaError:
            violations.append(f"to_ascii({name!r}) produced unencodable {once!r}")
            continue
        if twice != once:
            violations.append(f"to_ascii not idempotent on {name!r}: {once!r} -> {twice!r}")
    return violations


def scaling_rank_violations(
    counts: np.ndarray, eligible: np.ndarray, site: int, factor: float
) -> List[str]:
    """Violations of rank monotonicity under traffic scaling.

    Scaling one site's observed count up by ``factor >= 1`` must never
    move that site to a strictly worse rank position among the eligible
    (Cloudflare-served) sites.
    """
    counts = np.asarray(counts, dtype=np.float64)
    eligible = np.asarray(eligible, dtype=np.int64)

    def position(values: np.ndarray) -> int:
        order = eligible[np.argsort(-values[eligible], kind="stable")]
        return int(np.flatnonzero(order == site)[0])

    before = position(counts)
    scaled = counts.copy()
    scaled[site] *= factor
    after = position(scaled)
    if after > before:
        return [
            f"site {site} fell from position {before} to {after} "
            f"after scaling its count x{factor}"
        ]
    return []


def prefix_violations(tops: Dict[int, Sequence[int]]) -> List[str]:
    """Violations of truncation consistency across top-k views.

    ``tops`` maps a cut point ``k`` to the *independently computed* top-k
    of one ranking.  For every ``k <= k'`` the smaller view must be a
    prefix of the larger — i.e. the 1K/10K/100K/1M views of one list can
    never disagree about relative content.  (Trivial for a single sort,
    but exactly the property a future argpartition-style top-k
    optimization could silently break.)
    """
    violations: List[str] = []
    ordered = sorted(tops)
    for small, large in zip(ordered, ordered[1:]):
        a = list(tops[small])
        b = list(tops[large])
        if a != b[: len(a)]:
            violations.append(f"top-{small} is not a prefix of top-{large}")
    return violations


# ---------------------------------------------------------------------------
# The registry.


@dataclass(frozen=True)
class Invariant:
    """One registered pipeline-wide property.

    Attributes:
        name: stable identifier (CLI ``--only`` and pytest ids).
        description: one-line statement of the property.
        check: derives inputs from a live context and returns violations.
    """

    name: str
    description: str
    check: Callable[[ExperimentContext], List[str]]


@dataclass
class InvariantOutcome:
    """One invariant's execution record."""

    name: str
    ok: bool
    seconds: float
    violations: List[str] = field(default_factory=list)


def _provider_lists(ctx: ExperimentContext, depth: int = 400) -> Dict[str, List[int]]:
    """Deterministic day-0 normalized prefixes for every provider."""
    return {
        name: ctx.normalized(name, 0).sites[:depth].tolist()
        for name in sorted(ctx.providers)
    }


def _check_seed_determinism(ctx: ExperimentContext) -> List[str]:
    """Same config must yield bit-identical Figure 1/2/8 cells whether the
    context is built fresh, cold through a store, or hydrated from it."""
    from repro.core.experiments import run_experiment
    from repro.runner.parallel import _jsonable
    from repro.store import ArtifactStore

    config: WorldConfig = ctx.config

    def cells(context: ExperimentContext) -> Dict[str, str]:
        return {
            name: json.dumps(
                _jsonable(run_experiment(name, context).data), sort_keys=True
            )
            for name in ("fig1", "fig2", "fig8")
        }

    violations: List[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-qa-") as tmp:
        store = ArtifactStore(tmp)
        clear_contexts()
        cold = cells(experiment_context(config=config, store=store))
        clear_contexts()
        hydrated = cells(experiment_context(config=config, store=store))
        clear_contexts()
        fresh = cells(experiment_context(config=config))
        clear_contexts()
    for name in fresh:
        if cold[name] != fresh[name]:
            violations.append(f"{name}: store-backed cold run differs from fresh build")
        if hydrated[name] != fresh[name]:
            violations.append(f"{name}: store-hydrated run differs from fresh build")
    return violations


def _check_jaccard_table(ctx: ExperimentContext) -> List[str]:
    violations = jaccard_table_violations(_provider_lists(ctx))
    day0 = {combo: ctx.engine.ranking(0, combo)[:300].tolist() for combo in FINAL_SEVEN}
    violations.extend(jaccard_table_violations(day0))
    return violations


def _check_spearman_reversal(ctx: ExperimentContext) -> List[str]:
    violations: List[str] = []
    for name, sites in _provider_lists(ctx).items():
        for text in spearman_reversal_violations(sites):
            violations.append(f"{name}: {text}")
    return violations


def _check_monotone_relabel(ctx: ExperimentContext) -> List[str]:
    lists = _provider_lists(ctx)
    names = sorted(lists)
    violations: List[str] = []
    for a, b in zip(names, names[1:]):
        for text in relabel_invariance_violations(lists[a], lists[b]):
            violations.append(f"({a},{b}): {text}")
    return violations


def _check_normalize_idempotence(ctx: ExperimentContext) -> List[str]:
    # Real pipeline strings: every name kind the world publishes (apexes,
    # www/service FQDNs, serialized origins, DNS chaff), plus crafted IDN
    # and origin edge cases that the generator may not emit at small scale.
    sample = list(ctx.world.names.strings[:500])
    sample += [
        "https://www.example.com",
        "http://xn--bcher-kva.example",
        "bücher.example",
        "WWW.EXAMPLE.ORG",
    ]
    violations = normalize_idempotence_violations(sample)
    violations.extend(idna_idempotence_violations(sample))
    return violations


def _check_metric_monotonicity(ctx: ExperimentContext) -> List[str]:
    counts = ctx.engine.day_counts(0, combos=("all:requests",))["all:requests"]
    eligible = ctx.engine.cf_sites
    ranked = ctx.engine.ranking(0, "all:requests")
    # Probe sites across the popularity range (head, middle, tail).
    probes = [ranked[0], ranked[len(ranked) // 2], ranked[-1]]
    violations: List[str] = []
    for site in probes:
        for factor in (2.0, 10.0):
            violations.extend(
                scaling_rank_violations(counts, eligible, int(site), factor)
            )
    return violations


def _check_truncation_consistency(ctx: ExperimentContext) -> List[str]:
    violations: List[str] = []
    cuts = [m for m in ctx.magnitudes if m <= ctx.engine.n_cf_sites]
    for combo in FINAL_SEVEN:
        tops = {m: ctx.engine.top(0, combo, m).tolist() for m in cuts}
        for text in prefix_violations(tops):
            violations.append(f"{combo}: {text}")
    # Normalized provider lists expose truncation as top_sites(magnitude);
    # smaller cuts must select subsets of larger cuts, in the same order.
    for name in sorted(ctx.providers):
        normalized = ctx.normalized(name, 0)
        previous: Optional[List[int]] = None
        for magnitude in sorted(ctx.magnitudes):
            current = normalized.top_sites(magnitude).tolist()
            if previous is not None and current[: len(previous)] != previous:
                violations.append(
                    f"{name}: top_sites({magnitude}) does not extend the "
                    f"smaller cut"
                )
            previous = current
    return violations


#: Every registered pipeline invariant, in documentation order.
INVARIANTS: tuple = (
    Invariant(
        name="seed-determinism",
        description=(
            "same WorldConfig yields bit-identical Figure 1/2/8 cells, "
            "fresh vs store-cold vs store-hydrated"
        ),
        check=_check_seed_determinism,
    ),
    Invariant(
        name="jaccard-table",
        description="pairwise Jaccard is symmetric, within [0,1], diagonal 1",
        check=_check_jaccard_table,
    ),
    Invariant(
        name="spearman-reversal",
        description="Spearman is 1 against itself and -1 against the reversal",
        check=_check_spearman_reversal,
    ),
    Invariant(
        name="monotone-relabel",
        description=(
            "Jaccard/Spearman are invariant under monotone relabeling of "
            "domain ids"
        ),
        check=_check_monotone_relabel,
    ),
    Invariant(
        name="normalize-idempotence",
        description="PSL/IDNA normalization is idempotent on its own output",
        check=_check_normalize_idempotence,
    ),
    Invariant(
        name="metric-monotonicity",
        description="scaling a site's traffic up never worsens its rank",
        check=_check_metric_monotonicity,
    ),
    Invariant(
        name="truncation-consistency",
        description=(
            "1K/10K/100K/1M cuts of one ranking are mutually consistent "
            "prefixes/subsets"
        ),
        check=_check_truncation_consistency,
    ),
)


def run_invariants(
    ctx: ExperimentContext, names: Optional[Sequence[str]] = None
) -> List[InvariantOutcome]:
    """Run registered invariants against a live context.

    Args:
        ctx: the experiment context to derive inputs from.
        names: subset of invariant names (default: all).

    Returns:
        One outcome per invariant, in registry order.

    Raises:
        KeyError: for unknown invariant names.
    """
    import time

    by_name = {invariant.name: invariant for invariant in INVARIANTS}
    wanted = list(names) if names is not None else [i.name for i in INVARIANTS]
    unknown = [name for name in wanted if name not in by_name]
    if unknown:
        raise KeyError(f"unknown invariant(s): {', '.join(unknown)}")
    outcomes: List[InvariantOutcome] = []
    for name in wanted:
        invariant = by_name[name]
        started = time.perf_counter()
        try:
            violations = invariant.check(ctx)
        except Exception as error:  # a crash is itself a violation
            violations = [f"check raised {type(error).__name__}: {error}"]
        outcomes.append(
            InvariantOutcome(
                name=name,
                ok=not violations,
                seconds=time.perf_counter() - started,
                violations=violations,
            )
        )
    return outcomes
