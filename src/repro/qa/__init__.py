"""Correctness tooling: golden-result regression + metamorphic invariants.

The paper's claims are quantitative cells — Jaccard/Spearman grids,
rank-magnitude buckets, coverage and category tables — and every one of
them is a pure function of a :class:`~repro.worldgen.config.WorldConfig`.
This package pins those numbers down so perf and refactor PRs can move
fast without silently shifting results:

* :mod:`repro.qa.goldens` — every experiment in the registry serializes
  its structured rows to canonical JSON; checked-in goldens live under
  ``tests/golden/`` and ``repro verify-goldens`` recomputes and diffs
  them cell by cell with per-metric tolerances.
* :mod:`repro.qa.invariants` — a declarative registry of metamorphic
  properties goldens cannot express (seed determinism across store
  hydration, Jaccard symmetry, Spearman sign flips, normalization
  idempotence, rank monotonicity, truncation consistency), runnable both
  under Hypothesis and via ``repro verify-invariants``.
"""

from repro.qa.goldens import (
    GOLDEN_CONFIG,
    GoldenReport,
    GoldenStatus,
    Tolerance,
    default_golden_dir,
    dump_golden,
    verify_goldens,
    verify_payload,
)
from repro.qa.invariants import INVARIANTS, Invariant, InvariantOutcome, run_invariants

__all__ = [
    "GOLDEN_CONFIG",
    "GoldenReport",
    "GoldenStatus",
    "Tolerance",
    "default_golden_dir",
    "dump_golden",
    "verify_goldens",
    "verify_payload",
    "INVARIANTS",
    "Invariant",
    "InvariantOutcome",
    "run_invariants",
]
