"""Golden-result regression harness.

Every experiment in :data:`~repro.core.experiments.SPECS` is a pure
function of a :class:`~repro.worldgen.config.WorldConfig`, so its
structured rows admit a canonical JSON form that is bit-stable across
processes and machines.  This module snapshots that form ("goldens"),
recomputes it on demand through the parallel runner, and diffs the two
cell by cell with per-metric absolute/relative tolerances.

The checked-in goldens (``tests/golden/<experiment>.json``) are generated
at :data:`GOLDEN_CONFIG` scale — small enough that the whole registry
recomputes in seconds, large enough that every cell of every figure and
table is exercised.  ``repro verify-goldens`` is the gate each perf or
refactor PR runs against; ``--update`` regenerates the snapshots (and two
consecutive updates must produce a zero diff, which CI relies on).

Drift is reported two ways: a human-readable per-cell report on stdout,
and a machine-readable summary embedded in the run manifest (the
``qa`` block plus a ``golden_status`` per experiment outcome).
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core.experiments import SPECS
from repro.runner.manifest import ExperimentOutcome, RunManifest
from repro.store.artifacts import DEFAULT_MAX_BYTES, SCHEMA_VERSION
from repro.worldgen.config import WorldConfig

__all__ = [
    "GOLDEN_CONFIG",
    "Tolerance",
    "TOLERANCES",
    "DriftCell",
    "GoldenStatus",
    "GoldenReport",
    "default_golden_dir",
    "golden_payload",
    "dump_golden",
    "diff_payloads",
    "verify_payload",
    "verify_goldens",
]

#: The pinned configuration all checked-in goldens are generated at.  The
#: seed is the default February 2022 seed; the universe is shrunk so a
#: full-registry recompute stays CI-cheap.  Changing ANY field here
#: invalidates every golden — regenerate with ``repro verify-goldens
#: --update`` in the same commit.
GOLDEN_CONFIG = WorldConfig(n_sites=2500, n_days=8)

#: Maximum drift cells listed per experiment in the rendered report.
_MAX_RENDERED_CELLS = 12


@dataclass(frozen=True)
class Tolerance:
    """Per-metric numeric comparison tolerance.

    A cell passes when ``|actual - expected|`` is within ``abs_tol`` OR
    within ``rel_tol * |expected|``.  The defaults are deliberately tight:
    experiments are deterministic, so goldens should reproduce to the last
    bit and any slack only exists to absorb benign float-accumulation
    reordering (e.g. a vectorization PR summing in a different order).
    """

    abs_tol: float = 1e-9
    rel_tol: float = 1e-9

    def allows(self, expected: float, actual: float) -> bool:
        """Whether ``actual`` is acceptably close to ``expected``."""
        if math.isnan(expected) or math.isnan(actual):
            return math.isnan(expected) and math.isnan(actual)
        if math.isinf(expected) or math.isinf(actual):
            return expected == actual
        delta = abs(actual - expected)
        return delta <= self.abs_tol or delta <= self.rel_tol * abs(expected)


#: Per-experiment tolerance overrides; experiments not listed use the
#: default :class:`Tolerance`.  Loosen a cell here (with a comment naming
#: the PR that needed it) instead of regenerating goldens for float noise.
TOLERANCES: Dict[str, Tolerance] = {}


@dataclass(frozen=True)
class DriftCell:
    """One differing cell between a golden and a recomputed result.

    Attributes:
        path: slash-joined location inside the payload (``data/jaccard/...``).
        expected: the golden value (None when the cell is new).
        actual: the recomputed value (None when the cell disappeared).
        kind: ``value`` | ``type`` | ``missing`` | ``extra`` | ``length``.
    """

    path: str
    expected: object
    actual: object
    kind: str = "value"

    def render(self) -> str:
        if self.kind == "missing":
            return f"{self.path}: golden cell disappeared (was {self.expected!r})"
        if self.kind == "extra":
            return f"{self.path}: new cell not in golden ({self.actual!r})"
        return f"{self.path}: expected {self.expected!r}, got {self.actual!r}"


@dataclass
class GoldenStatus:
    """Per-experiment verification outcome.

    ``status`` is one of ``pass``, ``drift``, ``missing`` (no golden file),
    ``updated`` (``--update`` wrote the snapshot), or ``error`` (the
    experiment itself failed to run).
    """

    name: str
    status: str
    cells: List[DriftCell] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status in ("pass", "updated")


@dataclass
class GoldenReport:
    """The result of one ``verify_goldens`` call."""

    golden_dir: Path
    update: bool
    statuses: List[GoldenStatus]
    manifest: RunManifest
    manifest_file: Optional[Path]

    @property
    def ok(self) -> bool:
        """True when every experiment passed (or was updated)."""
        return all(status.ok for status in self.statuses)

    @property
    def drifted(self) -> List[GoldenStatus]:
        return [s for s in self.statuses if not s.ok]

    def summary(self) -> Dict[str, object]:
        """Machine-readable summary (embedded in the run manifest)."""
        return {
            "golden_dir": str(self.golden_dir),
            "mode": "update" if self.update else "verify",
            "golden_config": self.manifest.config,
            "statuses": {s.name: s.status for s in self.statuses},
            "drift_cells": {
                s.name: [
                    {"path": c.path, "kind": c.kind,
                     "expected": c.expected, "actual": c.actual}
                    for c in s.cells
                ]
                for s in self.statuses
                if s.cells
            },
        }

    def render(self) -> str:
        """Human-readable drift report, one block per experiment."""
        lines: List[str] = []
        for status in self.statuses:
            mark = "ok " if status.ok else "FAIL"
            detail = status.status
            if status.cells:
                detail += f" ({len(status.cells)} cell(s))"
            lines.append(f"[{mark}] {status.name}: {detail}")
            for cell in status.cells[:_MAX_RENDERED_CELLS]:
                lines.append(f"       {cell.render()}")
            if len(status.cells) > _MAX_RENDERED_CELLS:
                lines.append(
                    f"       ... {len(status.cells) - _MAX_RENDERED_CELLS} more"
                )
            if status.error:
                lines.append(f"       {status.error.strip().splitlines()[-1]}")
        passed = sum(1 for s in self.statuses if s.ok)
        lines.append(f"\n{passed}/{len(self.statuses)} experiments "
                     + ("updated" if self.update else "match goldens"))
        return "\n".join(lines)


def default_golden_dir(start: Optional[os.PathLike] = None) -> Path:
    """Locate ``tests/golden`` by walking up from ``start`` (default cwd).

    Falls back to ``<cwd>/tests/golden`` when no checkout root is found,
    so ``--update`` on a fresh tree creates the directory in place.
    """
    here = Path(os.fspath(start) if start is not None else os.getcwd()).resolve()
    for candidate in (here, *here.parents):
        golden = candidate / "tests" / "golden"
        if golden.is_dir():
            return golden
    return here / "tests" / "golden"


# ---------------------------------------------------------------------------
# Canonical payloads.


def golden_payload(
    name: str, title: str, config: WorldConfig, data: Dict[str, object], text: str
) -> Dict[str, object]:
    """The canonical golden document for one experiment run.

    ``data`` must already be the JSON projection produced by the runner
    (:func:`repro.runner.parallel._jsonable`); rendered text is pinned by
    digest only, so cosmetic formatting changes surface as exactly one
    drift cell instead of a wall of diff.
    """
    return {
        "experiment": name,
        "title": title,
        "schema_version": SCHEMA_VERSION,
        "config": json.loads(config.to_json()),
        "data": data,
        "text_sha256": ExperimentOutcome.digest(text),
    }


def dump_golden(payload: Dict[str, object]) -> str:
    """Deterministic serialization: sorted keys, two-space indent, trailing
    newline.  Two dumps of equal payloads are byte-identical, which is what
    makes ``--update`` idempotent under git."""
    return json.dumps(payload, sort_keys=True, indent=2, allow_nan=True) + "\n"


# ---------------------------------------------------------------------------
# Structural diff.

_NUMERIC = (int, float)


def diff_payloads(
    expected: object, actual: object, tolerance: Tolerance, path: str = ""
) -> List[DriftCell]:
    """Recursively diff two golden payloads into per-cell drift records.

    Numeric leaves compare under ``tolerance`` (NaN equals NaN — Spearman
    over tiny intersections is legitimately undefined); every other leaf
    compares exactly.  Container mismatches are reported per key/index so
    a drift report points at cells, not whole documents.
    """
    cells: List[DriftCell] = []
    # bool is an int subclass but True == 1 tolerance-passing is misleading.
    both_numeric = (
        isinstance(expected, _NUMERIC) and not isinstance(expected, bool)
        and isinstance(actual, _NUMERIC) and not isinstance(actual, bool)
    )
    if both_numeric:
        if not tolerance.allows(float(expected), float(actual)):
            cells.append(DriftCell(path or "/", expected, actual))
        return cells
    if type(expected) is not type(actual):
        cells.append(DriftCell(path or "/", expected, actual, kind="type"))
        return cells
    if isinstance(expected, dict):
        for key in sorted(set(expected) | set(actual)):
            sub = f"{path}/{key}" if path else str(key)
            if key not in actual:
                cells.append(DriftCell(sub, expected[key], None, kind="missing"))
            elif key not in expected:
                cells.append(DriftCell(sub, None, actual[key], kind="extra"))
            else:
                cells.extend(diff_payloads(expected[key], actual[key], tolerance, sub))
        return cells
    if isinstance(expected, list):
        if len(expected) != len(actual):
            cells.append(
                DriftCell(path or "/", len(expected), len(actual), kind="length")
            )
            return cells
        for i, (e, a) in enumerate(zip(expected, actual)):
            cells.extend(diff_payloads(e, a, tolerance, f"{path}[{i}]"))
        return cells
    if expected != actual:
        cells.append(DriftCell(path or "/", expected, actual))
    return cells


# ---------------------------------------------------------------------------
# The harness.


def verify_payload(
    name: str,
    payload: Dict[str, object],
    golden_file: Path,
    config: WorldConfig,
    update: bool = False,
) -> GoldenStatus:
    """Compare (or rewrite) one experiment's golden from its run payload.

    The payload must carry ``data`` (run with ``keep_data=True``).  Shared
    by :func:`verify_goldens` and ``repro chaos``, which uses it to prove
    results computed under fault injection are still golden-identical.
    """
    if not payload.get("ok"):
        return GoldenStatus(name, "error", error=str(payload.get("error")))
    document = golden_payload(
        name,
        str(payload.get("title", "")),
        config,
        payload["data"],  # type: ignore[arg-type]
        str(payload.get("text", "")),
    )
    if update:
        golden_file.parent.mkdir(parents=True, exist_ok=True)
        encoded = dump_golden(document)
        # Skip the write when nothing changed: keeps file mtimes (and any
        # build system watching them) honest on no-op updates.
        if not golden_file.exists() or golden_file.read_text() != encoded:
            golden_file.write_text(encoded)
        return GoldenStatus(name, "updated")
    if not golden_file.exists():
        return GoldenStatus(name, "missing")
    try:
        golden = json.loads(golden_file.read_text())
    except json.JSONDecodeError as error:
        return GoldenStatus(name, "drift", error=f"unreadable golden: {error}")
    tolerance = TOLERANCES.get(name, Tolerance())
    cells = diff_payloads(golden, document, tolerance)
    return GoldenStatus(name, "drift" if cells else "pass", cells=cells)


def verify_goldens(
    golden_dir: os.PathLike,
    names: Optional[Sequence[str]] = None,
    config: WorldConfig = GOLDEN_CONFIG,
    jobs: int = 1,
    update: bool = False,
    cache_dir: Optional[os.PathLike] = None,
    max_bytes: Optional[int] = DEFAULT_MAX_BYTES,
    manifest_path: Optional[os.PathLike] = None,
) -> GoldenReport:
    """Recompute experiments and diff (or rewrite) their goldens.

    Runs through :func:`repro.runner.parallel.run_experiments`, so
    ``jobs > 1`` fans out across the process pool and workers hydrate the
    shared world from the artifact store exactly like ``repro all``.

    Args:
        golden_dir: directory of ``<experiment>.json`` snapshots.
        names: experiment subset (default: the whole registry).
        config: world configuration (default: :data:`GOLDEN_CONFIG` — the
          one the checked-in goldens were generated at).
        jobs: worker processes for the recompute.
        update: rewrite goldens from the recomputed results instead of
          diffing against them.
        cache_dir: artifact-store root (None disables caching).
        max_bytes: store size cap.
        manifest_path: explicit run-manifest destination.

    Returns:
        A :class:`GoldenReport`; its run manifest carries the
        machine-readable summary (``qa`` block + per-outcome
        ``golden_status``) and is rewritten in place when it was persisted.
    """
    from repro.runner.parallel import run_experiments

    golden_dir = Path(os.fspath(golden_dir))
    names = list(names) if names is not None else list(SPECS)
    payloads, manifest, manifest_file = run_experiments(
        names,
        config,
        jobs=jobs,
        cache_dir=cache_dir,
        max_bytes=max_bytes,
        manifest_path=manifest_path,
        keep_data=True,
    )
    statuses = [
        verify_payload(name, payload, golden_dir / f"{name}.json", config, update)
        for name, payload in zip(names, payloads)
    ]
    report = GoldenReport(
        golden_dir=golden_dir,
        update=update,
        statuses=statuses,
        manifest=manifest,
        manifest_file=manifest_file,
    )
    by_name = {status.name: status for status in statuses}
    for outcome in manifest.outcomes:
        status = by_name.get(outcome.name)
        if status is not None:
            outcome.golden_status = status.status
    manifest.qa = report.summary()
    if manifest_file is not None:
        manifest.write(manifest_file)
    return report
