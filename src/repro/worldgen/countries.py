"""The country model.

The paper's Section 6 telemetry analysis covers ten countries the Chrome
team designated as high-fidelity plus China (for Secrank): Brazil, Germany,
Egypt, the United Kingdom, Indonesia, India, Japan, Nigeria, the United
States, South Africa, and China.  We model those eleven plus a rest-of-world
aggregate.

Each country carries the parameters that drive vantage-point bias:

* ``web_population_share`` — share of global web users; drives how much of
  a globally aggregated list each country "deserves".
* ``site_share`` — share of the world's *websites* homed in the country.
  Sites-per-user varies hugely: Japan's old, huge, self-contained web has
  far more sites than its user share implies (why every global list
  matches Japan poorly, Figure 7), while the US web is outsized in both
  directions.
* ``android_share`` — mobile (Android) fraction of the country's browsing;
  the complement browses on desktop (Windows, in the paper's pairing).
* ``chrome_share`` — Chrome's browser share, driving CrUX/telemetry panels.
* ``alexa_panel_rate`` — relative density of Alexa's browser-extension
  panel (desktop-only, strongest in the US and, historically, in several
  sub-Saharan African markets — the paper notes Alexa matches sub-Saharan
  Africa surprisingly well).
* ``umbrella_client_share`` — share of Cisco Umbrella's (enterprise-heavy,
  US-centric) DNS client base in the country.
* ``secrank_client_share`` — share of the Chinese resolver's client base
  (essentially all in China).
* ``enterprise_share`` — fraction of the country's clients sitting behind
  enterprise networks (weekday-heavy browsing; category blocking applies).
* ``cf_adoption_mult`` — multiplier on Cloudflare adoption for sites homed
  in the country (low in China where Cloudflare presence is limited).
* ``locality_mean`` — mean fraction of a home-country site's traffic that
  comes from its home country (Japan's unusually self-contained web is the
  paper's example of a market all lists miss).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["Country", "COUNTRIES", "country_index", "TELEMETRY_COUNTRIES"]


@dataclass(frozen=True)
class Country:
    """A country (or rest-of-world aggregate) and its vantage parameters."""

    code: str
    name: str
    web_population_share: float
    site_share: float
    android_share: float
    chrome_share: float
    alexa_panel_rate: float
    umbrella_client_share: float
    secrank_client_share: float
    enterprise_share: float
    cf_adoption_mult: float
    locality_mean: float


COUNTRIES: Tuple[Country, ...] = (
    Country("us", "United States", 0.105, 0.24, 0.42, 0.49, 1.00, 0.620, 0.000, 0.34, 1.25, 0.52),
    Country("cn", "China", 0.210, 0.15, 0.70, 0.35, 0.05, 0.004, 0.970, 0.20, 0.10, 0.93),
    Country("in", "India", 0.150, 0.06, 0.82, 0.88, 0.25, 0.030, 0.002, 0.12, 1.00, 0.55),
    Country("br", "Brazil", 0.045, 0.04, 0.70, 0.82, 0.30, 0.025, 0.000, 0.14, 1.05, 0.62),
    Country("de", "Germany", 0.022, 0.05, 0.45, 0.46, 0.40, 0.060, 0.000, 0.30, 1.10, 0.58),
    Country("gb", "United Kingdom", 0.018, 0.04, 0.46, 0.50, 0.55, 0.070, 0.000, 0.30, 1.15, 0.48),
    Country("id", "Indonesia", 0.055, 0.03, 0.88, 0.85, 0.20, 0.012, 0.001, 0.08, 1.00, 0.60),
    Country("jp", "Japan", 0.028, 0.07, 0.55, 0.50, 0.12, 0.040, 0.000, 0.28, 0.85, 0.88),
    Country("ng", "Nigeria", 0.030, 0.01, 0.90, 0.76, 0.85, 0.004, 0.000, 0.05, 0.95, 0.45),
    Country("eg", "Egypt", 0.018, 0.01, 0.78, 0.80, 0.35, 0.005, 0.000, 0.08, 0.95, 0.60),
    Country("za", "South Africa", 0.010, 0.01, 0.72, 0.72, 0.80, 0.010, 0.000, 0.15, 1.00, 0.50),
    Country("row", "Rest of World", 0.309, 0.29, 0.62, 0.62, 0.30, 0.120, 0.027, 0.16, 1.00, 0.55),
)

_SHARE_TOTAL = sum(c.web_population_share for c in COUNTRIES)
assert abs(_SHARE_TOTAL - 1.0) < 1e-9, f"population shares must sum to 1, got {_SHARE_TOTAL}"

_SITE_TOTAL = sum(c.site_share for c in COUNTRIES)
assert abs(_SITE_TOTAL - 1.0) < 1e-9, f"site shares must sum to 1, got {_SITE_TOTAL}"

_UMBRELLA_TOTAL = sum(c.umbrella_client_share for c in COUNTRIES)
assert abs(_UMBRELLA_TOTAL - 1.0) < 1e-9, "umbrella client shares must sum to 1"

_SECRANK_TOTAL = sum(c.secrank_client_share for c in COUNTRIES)
assert abs(_SECRANK_TOTAL - 1.0) < 1e-9, "secrank client shares must sum to 1"

_BY_CODE: Dict[str, int] = {c.code: i for i, c in enumerate(COUNTRIES)}

#: The 11 countries of the Section 6 telemetry analysis (excludes ROW).
TELEMETRY_COUNTRIES: Tuple[str, ...] = tuple(c.code for c in COUNTRIES if c.code != "row")


def country_index(code: str) -> int:
    """Stable index of a country by ISO-ish code.

    Raises:
        KeyError: for unknown codes.
    """
    return _BY_CODE[code]
