"""World assembly.

A :class:`World` bundles the site universe, client population, and name
table, plus deterministic per-subsystem random streams.  Every vantage point
(CDN, DNS, browser panels, SEO crawler) receives its own child stream, so
adding a new consumer never perturbs the randomness of existing ones — a
property the regression tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro import obs
from repro.worldgen.clients import ClientPopulation, build_clients
from repro.worldgen.config import WorldConfig
from repro.worldgen.nametable import NameTable, build_name_table
from repro.worldgen.sites import SiteUniverse, build_sites

__all__ = ["World", "build_world", "spawn_seed_streams"]

# Fixed stream ids: append only, never reorder.
_STREAMS = (
    "sites",
    "clients",
    "names",
    "traffic",
    "cdn",
    "alexa",
    "umbrella",
    "majestic",
    "secrank",
    "chrome",
    "linkgraph",
    "eventsim",
    "dns",
)


@dataclass
class World:
    """The complete synthetic web ecosystem.

    Attributes:
        config: the generating configuration.
        sites: the site universe (index = true global rank - 1).
        clients: the client population segments.
        names: the name table (domains, FQDNs, origins, infra names).
    """

    config: WorldConfig
    sites: SiteUniverse
    clients: ClientPopulation
    names: NameTable
    _seeds: Dict[str, np.random.SeedSequence] = field(default_factory=dict, repr=False)

    def rng(self, stream: str) -> np.random.Generator:
        """A fresh generator for a named subsystem stream.

        Each call returns a generator rewound to the stream's start, so a
        subsystem re-run over the same world reproduces itself exactly.

        Raises:
            KeyError: for stream names not in the fixed registry.
        """
        return np.random.default_rng(self._seeds[stream])

    def day_rng(self, stream: str, day: int) -> np.random.Generator:
        """A generator for (subsystem, day), independent across days."""
        seed = self._seeds[stream]
        return np.random.default_rng(np.random.SeedSequence(
            entropy=seed.entropy, spawn_key=seed.spawn_key + (day + 1,)
        ))

    @property
    def n_sites(self) -> int:
        """Number of sites in the universe."""
        return self.sites.n_sites

    @property
    def n_days(self) -> int:
        """Number of simulated days."""
        return self.config.n_days

    def site_index_of_domain(self, domain: str) -> int:
        """Site index owning a registrable domain.

        Raises:
            KeyError: if no site owns the domain.
        """
        row = self.names.lookup(domain)
        if row is None or int(self.names.site[row]) < 0:
            raise KeyError(domain)
        return int(self.names.site[row])

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Flatten the world into one array mapping for the artifact store.

        Subsystem arrays are prefixed (``sites__weight``...).  The seed
        streams are *not* serialized: they are a pure function of the
        config and are respawned on :meth:`from_arrays`, so a hydrated
        world feeds every downstream consumer bit-identical randomness.
        """
        out: Dict[str, np.ndarray] = {}
        for prefix, part in (
            ("sites", self.sites),
            ("clients", self.clients),
            ("names", self.names),
        ):
            for key, value in part.to_arrays().items():
                out[f"{prefix}__{key}"] = value
        return out

    @classmethod
    def from_arrays(cls, config: WorldConfig, arrays: Dict[str, np.ndarray]) -> "World":
        """Rebuild a world from :meth:`to_arrays` output plus its config."""
        split: Dict[str, Dict[str, np.ndarray]] = {"sites": {}, "clients": {}, "names": {}}
        for key, value in arrays.items():
            prefix, _, rest = key.partition("__")
            split[prefix][rest] = value
        return cls(
            config=config,
            sites=SiteUniverse.from_arrays(split["sites"]),
            clients=ClientPopulation.from_arrays(split["clients"]),
            names=NameTable.from_arrays(split["names"]),
            _seeds=spawn_seed_streams(config),
        )


def spawn_seed_streams(config: WorldConfig) -> Dict[str, np.random.SeedSequence]:
    """The fixed per-subsystem seed streams for a config."""
    root = np.random.SeedSequence(config.seed)
    children = root.spawn(len(_STREAMS))
    return dict(zip(_STREAMS, children))


def build_world(config: WorldConfig) -> World:
    """Deterministically build a world from a configuration."""
    seeds = spawn_seed_streams(config)

    with obs.span("world/sites"):
        sites = build_sites(config, np.random.default_rng(seeds["sites"]))
    with obs.span("world/clients"):
        clients = build_clients(config, np.random.default_rng(seeds["clients"]))
    with obs.span("world/names"):
        names = build_name_table(config, sites, np.random.default_rng(seeds["names"]))
    obs.count("world.sites", config.n_sites)

    return World(config=config, sites=sites, clients=clients, names=names, _seeds=seeds)
