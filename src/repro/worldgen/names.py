"""Synthetic domain-name generation.

Generates plausible, unique registrable domain names for the site universe.
Names are flavour, not substance — every analysis keys on site indices — but
realistic names matter for two experiments: Table 2's PSL-deviation counts
(which need country-appropriate multi-level suffixes like ``co.jp``) and the
Umbrella alphabetical tie-breaking artifact (Section 5.2).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.weblib.categories import CATEGORIES
from repro.worldgen.countries import COUNTRIES

__all__ = ["generate_site_names", "SUBDOMAIN_POOL", "WEB_FACING_SUBDOMAINS"]

_PREFIXES: Sequence[str] = (
    "alpha", "arc", "astro", "atlas", "aura", "auto", "axis", "beacon", "bento",
    "blue", "bold", "breeze", "bright", "brook", "byte", "cedar", "chroma",
    "cipher", "citrus", "clear", "cloud", "cobalt", "comet", "coral", "cosmo",
    "craft", "crest", "crystal", "cyber", "dash", "data", "dawn", "delta",
    "drift", "dyna", "echo", "ember", "epic", "ever", "falcon", "fast", "fern",
    "flare", "flux", "forge", "fox", "fresh", "frost", "gamma", "gem", "glide",
    "globe", "gold", "granite", "green", "grid", "halo", "harbor", "haven",
    "helio", "hex", "honey", "horizon", "hydra", "indigo", "infra", "iris",
    "iron", "ivory", "jade", "jet", "jolt", "juniper", "kappa", "keen", "kite",
    "lark", "laser", "leaf", "ledger", "lime", "linden", "lively", "loop",
    "lotus", "lumen", "luna", "lyric", "macro", "magma", "maple", "marble",
    "mellow", "mercury", "meridian", "meta", "micro", "mint", "mira", "modal",
    "mono", "moss", "nebula", "neon", "nexus", "nimbus", "north", "nova",
    "oak", "ocean", "omega", "onyx", "opal", "orbit", "orchid", "origin",
    "osprey", "oxide", "palm", "panda", "paper", "peak", "pearl", "penta",
    "pepper", "phase", "pike", "pine", "pixel", "plasma", "pluto", "polar",
    "prime", "prism", "pulse", "pure", "quanta", "quartz", "quest", "quill",
    "radial", "rain", "rapid", "raven", "ray", "reef", "ridge", "rift",
    "river", "robin", "rocket", "rose", "rubic", "rustic", "sable", "saga",
    "sail", "salt", "sapphire", "scout", "sequoia", "shade", "shift", "sierra",
    "silver", "sky", "slate", "snow", "solar", "sonic", "spark", "spring",
    "sprout", "star", "stellar", "stone", "storm", "stream", "summit", "sun",
    "swift", "sync", "terra", "thistle", "thunder", "tidal", "tiger", "topaz",
    "torch", "trail", "true", "tulip", "turbo", "twin", "ultra", "umber",
    "unity", "urban", "vale", "vantage", "vapor", "vector", "velvet", "verde",
    "vertex", "vista", "vivid", "volt", "vortex", "wave", "west", "whale",
    "willow", "wind", "wing", "wolf", "zen", "zephyr", "zeta", "zinc",
)

_SUFFIXES: Sequence[str] = (
    "base", "bay", "beam", "bit", "board", "book", "box", "bridge", "cast",
    "center", "chain", "chart", "check", "city", "club", "code", "core",
    "corner", "craft", "crate", "cube", "daily", "deck", "den", "depot",
    "desk", "dock", "dome", "door", "dot", "drive", "edge", "express",
    "factory", "feed", "field", "file", "finder", "flow", "fly", "folio",
    "force", "ford", "form", "forum", "frame", "front", "gate", "gear",
    "guide", "hall", "hub", "house", "inn", "kit", "lab", "lane", "layer",
    "line", "list", "lobby", "lodge", "loft", "log", "mart", "mesh", "mill",
    "mind", "mode", "nest", "net", "node", "notes", "now", "pad", "page",
    "pal", "panel", "park", "path", "pier", "pilot", "place", "plan",
    "planet", "plaza", "point", "pool", "port", "portal", "post", "press",
    "pro", "quarter", "rack", "radar", "rail", "ranch", "range", "report",
    "ring", "road", "room", "root", "route", "scape", "scene", "school",
    "scope", "script", "sense", "share", "shelf", "shop", "sight", "signal",
    "sort", "source", "space", "span", "sphere", "spot", "springs", "stack",
    "stage", "stand", "station", "store", "story", "studio", "suite", "table",
    "tap", "team", "tide", "time", "tools", "tower", "track", "trade",
    "trail", "tree", "trek", "vault", "venture", "verse", "view", "villa",
    "ville", "vine", "ware", "watch", "way", "web", "well", "wire", "works",
    "yard", "zone",
)

#: Service subdomain labels a site may answer on, beyond its apex.
SUBDOMAIN_POOL: Sequence[str] = (
    "www", "m", "api", "cdn", "static", "img", "blog", "shop", "app",
    "news", "mail", "forum", "store", "docs", "assets", "media", "dev",
    "help", "auth", "edge",
)

#: Subdomains that serve user-facing pages (and thus become CrUX origins);
#: the rest are infrastructure endpoints that only show up in DNS and
#: subresource request logs.
WEB_FACING_SUBDOMAINS = frozenset(
    {"www", "m", "blog", "shop", "app", "news", "forum", "store", "docs", "help"}
)

# Per-country generic vs country-code TLD pools.  Weights are relative.
_GENERIC_TLDS = (("com", 10.0), ("net", 2.0), ("org", 2.0), ("io", 1.2),
                 ("co", 0.8), ("info", 0.5), ("xyz", 0.5), ("app", 0.4),
                 ("dev", 0.3), ("site", 0.3), ("online", 0.2), ("shop", 0.2))

_COUNTRY_TLDS = {
    "us": (("com", 12.0), ("net", 2.0), ("org", 2.5), ("io", 1.5), ("us", 0.3)),
    "cn": (("com.cn", 3.0), ("cn", 3.0), ("com", 4.0), ("net.cn", 0.5), ("org.cn", 0.3)),
    "in": (("in", 2.0), ("co.in", 1.5), ("com", 6.0), ("org", 1.0)),
    "br": (("com.br", 5.0), ("br", 1.0), ("com", 3.0), ("org.br", 0.5)),
    "de": (("de", 6.0), ("com", 3.0), ("org", 0.6), ("net", 0.5)),
    "gb": (("co.uk", 5.0), ("uk", 1.5), ("com", 3.5), ("org.uk", 0.8)),
    "id": (("co.id", 2.5), ("id", 1.8), ("com", 4.0), ("or.id", 0.3)),
    "jp": (("co.jp", 4.0), ("jp", 2.5), ("com", 3.0), ("ne.jp", 0.8), ("or.jp", 0.5)),
    "ng": (("com.ng", 2.0), ("ng", 1.5), ("com", 5.0), ("org.ng", 0.3)),
    "eg": (("com.eg", 1.5), ("eg", 1.0), ("com", 5.0), ("net", 0.6)),
    "za": (("co.za", 4.0), ("za", 0.5), ("com", 3.5), ("org.za", 0.4)),
    "row": _GENERIC_TLDS,
}

# Category-specific TLD overrides, applied with the given probability.
_CATEGORY_TLDS = {
    "government": {
        "us": "gov", "gb": "gov.uk", "cn": "gov.cn", "br": "gov.br",
        "in": "gov.in", "id": "go.id", "jp": "go.jp", "ng": "gov.ng",
        "eg": "gov.eg", "za": "gov.za", "de": "de", "row": "gov",
    },
    "education": {
        "us": "edu", "gb": "ac.uk", "cn": "edu.cn", "br": "edu.br",
        "in": "ac.in", "id": "ac.id", "jp": "ac.jp", "ng": "edu.ng",
        "eg": "edu.eg", "za": "ac.za", "de": "de", "row": "edu",
    },
}
_CATEGORY_TLD_PROB = {"government": 0.85, "education": 0.7}


def _tld_chooser(rng: np.random.Generator) -> List[np.ndarray]:
    """Pre-split TLD pools and weights per country index."""
    pools = []
    for country in COUNTRIES:
        entries = _COUNTRY_TLDS.get(country.code, _GENERIC_TLDS)
        tlds = np.array([t for t, _ in entries], dtype=object)
        weights = np.array([w for _, w in entries], dtype=np.float64)
        weights /= weights.sum()
        pools.append((tlds, weights))
    return pools


def generate_site_names(
    rng: np.random.Generator,
    home_country: np.ndarray,
    category: np.ndarray,
) -> List[str]:
    """Generate one unique registrable domain per site.

    Args:
        rng: the random stream.
        home_country: per-site country index into ``COUNTRIES``.
        category: per-site category index into ``CATEGORIES``.

    Returns:
        A list of unique lowercase registrable domains, aligned with input.
    """
    n = len(home_country)
    prefixes = np.asarray(_PREFIXES, dtype=object)
    suffixes = np.asarray(_SUFFIXES, dtype=object)
    pools = _tld_chooser(rng)

    prefix_idx = rng.integers(0, len(prefixes), size=n)
    suffix_idx = rng.integers(0, len(suffixes), size=n)
    hyphen = rng.random(n) < 0.08
    cat_roll = rng.random(n)

    # Pre-draw a TLD per site from its home-country pool.
    tld_choice = np.empty(n, dtype=object)
    for c_idx, (tlds, weights) in enumerate(pools):
        mask = home_country == c_idx
        count = int(mask.sum())
        if count:
            tld_choice[mask] = rng.choice(tlds, size=count, p=weights)

    cat_names = [CATEGORIES[i].name for i in range(len(CATEGORIES))]
    country_codes = [c.code for c in COUNTRIES]

    seen = set()
    names: List[str] = []
    for i in range(n):
        label = str(prefixes[prefix_idx[i]]) + ("-" if hyphen[i] else "") + str(suffixes[suffix_idx[i]])
        tld = str(tld_choice[i])
        cat_name = cat_names[category[i]]
        override = _CATEGORY_TLDS.get(cat_name)
        if override is not None and cat_roll[i] < _CATEGORY_TLD_PROB[cat_name]:
            code = country_codes[home_country[i]]
            tld = override.get(code, override["row"])
        name = f"{label}.{tld}"
        if name in seen:
            serial = 2
            while f"{label}{serial}.{tld}" in seen:
                serial += 1
            name = f"{label}{serial}.{tld}"
        seen.add(name)
        names.append(name)
    return names
