"""World self-validation.

A configurable generative model can silently drift into nonsense; this
module checks every structural invariant the analyses rely on and reports
them as a diagnostic list.  ``repro validate`` runs it from the CLI, and
the test suite runs it over every fixture world, so the invariants are
enforced both interactively and in CI.

Checks cover the ground truth (weights, shares, request-shape bounds), the
name table (layout, folding), and cross-subsystem wiring (bookend metric
ordering, Cloudflare masking).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.cdn.metrics import CdnMetricEngine
from repro.traffic.fastpath import TrafficModel
from repro.weblib.psl import default_psl
from repro.worldgen.nametable import NameKind
from repro.worldgen.world import World

__all__ = ["CheckResult", "validate_world", "WORLD_CHECKS"]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one validation check."""

    name: str
    passed: bool
    detail: str


def _check_weights(world: World) -> CheckResult:
    weights = world.sites.weight
    ok = (
        abs(weights.sum() - 1.0) < 1e-9
        and (np.diff(weights) <= 1e-15).all()
        and (weights > 0).all()
    )
    return CheckResult(
        "site weights", ok,
        "normalized, strictly positive, sorted by rank" if ok else "weight vector malformed",
    )


def _check_country_shares(world: World) -> CheckResult:
    rows = world.sites.country_share.sum(axis=1)
    ok = np.allclose(rows, 1.0, atol=1e-9)
    return CheckResult(
        "country shares", ok,
        "per-site origin shares sum to 1" if ok else
        f"rows off by up to {abs(rows - 1.0).max():.2e}",
    )


def _check_request_shape(world: World) -> CheckResult:
    sites = world.sites
    problems = []
    if not (sites.subres_mult >= 1.0).all():
        problems.append("subres_mult < 1")
    if not ((sites.root_frac > 0) & (sites.root_frac < 1)).all():
        problems.append("root_frac out of (0,1)")
    if not (sites.tls_per_pageload <= sites.subres_mult + 1e-9).all():
        problems.append("tls above request bound")
    if not (sites.browser5_frac <= 1 - sites.bot_share + 1e-9).all():
        problems.append("browser share exceeds human share")
    ok = not problems
    return CheckResult(
        "request shape", ok,
        "bookend and share bounds hold" if ok else "; ".join(problems),
    )


def _check_giants(world: World) -> CheckResult:
    giants = world.config.cf_excluded_giants
    ok = not world.sites.cf_served[:giants].any()
    return CheckResult(
        "cloudflare giants", ok,
        f"top {giants} sites never on Cloudflare" if ok else "a giant is CF-served",
    )


def _check_name_table_layout(world: World) -> CheckResult:
    names = world.names
    n = world.n_sites
    ok = (
        (names.kind[:n] == NameKind.DOMAIN).all()
        and (names.site[:n] == np.arange(n)).all()
        and names.strings[:n] == world.sites.names
    )
    return CheckResult(
        "name-table layout", ok,
        "domain rows lead in site order" if ok else "layout invariant broken",
    )


def _check_fqdn_folding(world: World) -> CheckResult:
    names = world.names
    psl = default_psl()
    rows = names.rows_of_kind(NameKind.FQDN)
    sample = rows[:: max(1, len(rows) // 200)]
    for row in sample:
        site = int(names.site[row])
        if site < 0:
            continue
        registrable = psl.registrable_domain(names.strings[row])
        if registrable != world.sites.names[site]:
            return CheckResult(
                "fqdn folding", False,
                f"{names.strings[row]} folds to {registrable}, "
                f"owner is {world.sites.names[site]}",
            )
    return CheckResult("fqdn folding", True, "sampled FQDNs fold to their owner domain")


def _check_fqdn_shares(world: World) -> CheckResult:
    names = world.names
    rows = names.rows_of_kind(NameKind.FQDN)
    sites = names.site[rows]
    shares = names.share[rows]
    totals = np.zeros(world.n_sites)
    np.add.at(totals, sites[sites >= 0], shares[sites >= 0])
    ok = np.allclose(totals, 1.0, atol=1e-6)
    return CheckResult(
        "fqdn shares", ok,
        "per-site FQDN shares sum to 1" if ok else
        f"worst deviation {abs(totals - 1.0).max():.2e}",
    )


def _check_metric_bookends(world: World) -> CheckResult:
    traffic = TrafficModel(world)
    engine = CdnMetricEngine(world, traffic, apply_sampling_noise=False)
    expected = engine.expected_day_counts(0)
    pageloads = traffic.day(0).pageloads
    ok = (
        (expected["root:requests"] <= expected["all:requests"] + 1e-6).all()
        and (expected["all:requests"] >= pageloads - 1e-6).all()
    )
    return CheckResult(
        "metric bookends", ok,
        "root loads <= pageloads <= all requests" if ok else "bookend violated",
    )


def _check_cf_masking(world: World) -> CheckResult:
    engine = CdnMetricEngine(world, TrafficModel(world))
    counts = engine.day_counts(0, combos=("all:requests",))["all:requests"]
    ok = (counts[~world.sites.cf_served] == 0).all()
    return CheckResult(
        "cloudflare masking", ok,
        "non-customers invisible to the CDN" if ok else "leakage outside CF",
    )


#: The ordered battery of world checks.
WORLD_CHECKS: List[Callable[[World], CheckResult]] = [
    _check_weights,
    _check_country_shares,
    _check_request_shape,
    _check_giants,
    _check_name_table_layout,
    _check_fqdn_folding,
    _check_fqdn_shares,
    _check_metric_bookends,
    _check_cf_masking,
]


def validate_world(world: World) -> List[CheckResult]:
    """Run every structural check against a world.

    Returns all results (callers decide whether a failure is fatal); the
    CLI prints them and exits nonzero on any failure.
    """
    return [check(world) for check in WORLD_CHECKS]
