"""The hyperlink web graph.

Majestic ranks websites by backlinks.  At bench scale the site universe
carries analytic backlink counts (see :mod:`repro.worldgen.sites`); for
small worlds — tests, examples, and the link-structure ablation bench — this
module materializes an explicit directed graph with networkx whose in-degree
distribution matches those counts, so graph algorithms (PageRank-style
scoring, reciprocity checks) can be run for real.

Edges are drawn by preferential attachment toward each site's
``backlink_score``: link authority begets links, mostly independently of
traffic, which is precisely the Majestic failure mode the paper documents.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx
import numpy as np

from repro.worldgen.sites import SiteUniverse

__all__ = ["build_link_graph", "backlink_counts", "link_pagerank"]


def build_link_graph(
    sites: SiteUniverse,
    rng: np.random.Generator,
    mean_outlinks: float = 12.0,
    max_sites: Optional[int] = 5000,
) -> nx.DiGraph:
    """Materialize a directed hyperlink graph over (a prefix of) the universe.

    Args:
        sites: the site universe.
        rng: random stream.
        mean_outlinks: mean distinct external sites each site links to.
        max_sites: cap on the number of sites included (graphs are only
          materialized for small worlds); None includes every site.

    Returns:
        A ``networkx.DiGraph`` whose nodes are site indices and whose edge
        ``u -> v`` means "a page on u links to v".
    """
    n = sites.n_sites if max_sites is None else min(sites.n_sites, max_sites)
    graph = nx.DiGraph()
    graph.add_nodes_from(range(n))

    # Attachment probability: softmax of backlink score, so link-magnet
    # categories (news, government) soak up edges.
    score = sites.backlink_score[:n]
    attach = np.exp(score - score.max())
    attach /= attach.sum()

    out_degrees = rng.poisson(mean_outlinks, size=n)
    for u in range(n):
        k = int(out_degrees[u])
        if k == 0:
            continue
        targets = rng.choice(n, size=min(k, n - 1), replace=False, p=attach)
        for v in targets:
            if int(v) != u:
                graph.add_edge(u, int(v))
    return graph


def backlink_counts(graph: nx.DiGraph, n_sites: int) -> np.ndarray:
    """In-degree (backlink referring-site count) per site index."""
    counts = np.zeros(n_sites, dtype=np.int64)
    for node, degree in graph.in_degree():
        counts[node] = degree
    return counts


def link_pagerank(graph: nx.DiGraph, n_sites: int, alpha: float = 0.85) -> np.ndarray:
    """PageRank over the link graph, as a dense per-site array.

    Majestic's "Trust Flow" style metrics are link-recursive; this gives the
    ablation bench a second link-based ranking to compare against raw
    backlink counts.
    """
    ranks = nx.pagerank(graph, alpha=alpha)
    out = np.zeros(n_sites, dtype=np.float64)
    for node, value in ranks.items():
        out[node] = value
    return out
