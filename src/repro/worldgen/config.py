"""World configuration.

Every experiment in the reproduction is a pure function of a
:class:`WorldConfig`.  The defaults are calibrated so that the bench-scale
world (tens of thousands of registrable domains, 28 simulated days standing
in for February 2022) reproduces the qualitative shapes of the paper's
tables and figures in seconds of compute.

Scaling note: the paper studies rank magnitudes 1K/10K/100K/1M over a 1M
universe.  We keep the magnitude *labels* and scale the bucket sizes by
``n_sites / paper_universe``; DESIGN.md Section 2 documents this
substitution.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Optional, Tuple

__all__ = ["WorldConfig", "PAPER_MAGNITUDE_LABELS", "PAPER_MAGNITUDES", "PAPER_UNIVERSE"]

#: The paper's rank-magnitude bucket labels, smallest first.
PAPER_MAGNITUDE_LABELS: Tuple[str, ...] = ("1K", "10K", "100K", "1M")

#: The paper's rank-magnitude bucket sizes.
PAPER_MAGNITUDES: Tuple[int, ...] = (1_000, 10_000, 100_000, 1_000_000)

#: The size of the paper's site universe (the "Top 1M").
PAPER_UNIVERSE: int = 1_000_000


@dataclass(frozen=True)
class WorldConfig:
    """All knobs of the synthetic web ecosystem.

    Attributes are grouped by subsystem; see DESIGN.md for the mapping from
    paper mechanism to parameter.
    """

    # --- global ---------------------------------------------------------
    seed: int = 20220201
    n_sites: int = 20_000
    n_days: int = 28
    #: Weekday of day 0 (0=Monday).  February 1, 2022 was a Tuesday.
    start_weekday: int = 1

    # --- traffic volume -------------------------------------------------
    #: Global intentional pageloads per simulated day, across all clients.
    daily_pageloads: float = 2.0e8
    #: Global unique web clients (IP addresses); split across countries by
    #: ``web_population_share``.
    n_clients: float = 5.0e7
    #: Zipf exponent of the true popularity distribution.
    zipf_exponent: float = 0.95
    #: Day-over-day lognormal jitter (sigma) on a site's true pageloads.
    daily_noise_sigma: float = 0.18

    # --- measurement noise ----------------------------------------------
    #: Lognormal sigma of per-metric measurement noise in the CDN engine.
    metric_noise_sigma: float = 0.05

    # --- naming structure -----------------------------------------------
    #: Mean number of distinct service FQDNs per site beyond the apex.
    mean_extra_fqdns: float = 1.8
    #: Probability a site serves its main site on ``www.`` vs the apex.
    www_primary_prob: float = 0.55
    #: Probability a site additionally answers (with real traffic) on plain
    #: HTTP, creating a second origin for CrUX.
    http_origin_prob: float = 0.12

    # --- Cloudflare adoption --------------------------------------------
    #: Peak adoption probability (mid-popularity sites adopt most).
    cf_adoption_peak: float = 0.34
    #: Adoption probability floor for the long tail.
    cf_adoption_floor: float = 0.16
    #: Number of top global sites that never use Cloudflare ("none of the
    #: top ten sites use Cloudflare", Section 4.5).  The paper's ten giants
    #: are 1% of its smallest bucket; at bench scale the proportion is kept
    #: by using fewer giants rather than ten.
    cf_excluded_giants: int = 3

    # --- provider panels --------------------------------------------------
    #: Alexa's daily panel observation budget (pageview events).  Small:
    #: Alexa's extension install base is tiny relative to Chrome.
    alexa_daily_events: float = 8.0e4
    #: Multiplier applied to Alexa's panel after ``alexa_change_day``
    #: (the unexplained late-February accuracy improvement in Figure 3).
    alexa_change_boost: float = 5.0
    #: Day index (0-based) when Alexa's methodology silently changes; use a
    #: value >= n_days to disable.
    alexa_change_day: int = 21
    #: EMA smoothing factor for Alexa's trailing-3-month averaging.
    alexa_smoothing: float = 0.35
    #: Chrome sync-enabled panel daily observation budget (pageload events).
    chrome_daily_events: float = 4.0e7
    #: Umbrella resolver client base size (unique client IPs).
    umbrella_clients: float = 8.0e6
    #: Mean devices behind one enterprise DNS forwarder in Umbrella's
    #: base.  1 disables shared-cache compression entirely (the ablation
    #: knob for the paper's "caching, TTLs, and other DNS complexities"
    #: explanation of Umbrella's poor rank accuracy).
    umbrella_org_size: float = 300.0
    #: Secrank resolver client base size (unique client IPs, China).
    secrank_daily_events: float = 3.0e6
    #: Non-website DNS "chaff" names (app/OS/CDN endpoints, device names)
    #: as a fraction of n_sites.  Real DNS-derived lists are full of these;
    #: they crowd websites out of Umbrella's million and depress its
    #: Cloudflare coverage (Table 1's 2-11%).
    dns_chaff_fraction: float = 0.25
    #: Majestic backlink-to-popularity log-log correlation (0..1); the
    #: paper finds little evidence links track popularity, so this is low.
    majestic_link_fidelity: float = 0.30
    #: Tranco aggregation window, days (paper: 30; clipped to history).
    tranco_window: int = 30
    #: Trexa interleave ratio (Alexa entries per Tranco entry).
    trexa_alexa_weight: int = 2

    # --- CrUX ------------------------------------------------------------
    #: Minimum monthly unique panel visitors for an origin to be published.
    crux_privacy_threshold: float = 12.0

    # --- rank magnitudes --------------------------------------------------
    #: Bucket sizes as fractions of ``list_length`` (the paper's buckets
    #: are fractions of its 1M-entry lists), labelled 1K/10K/100K/1M.
    bucket_fractions: Tuple[float, ...] = (0.005, 0.05, 0.5, 1.0)
    bucket_labels: Tuple[str, ...] = PAPER_MAGNITUDE_LABELS

    # --- temporal events --------------------------------------------------
    #: Multiplier on news-category popularity from ``news_event_day``
    #: onward (the February 2022 black-swan news cycle).
    news_event_boost: float = 1.8
    news_event_day: int = 23

    # --- list sizes -------------------------------------------------------
    #: Length of each provider's published list, as a fraction of n_sites.
    #: Real lists are 1M entries selected from a web of hundreds of
    #: millions of domains; lists covering the whole universe would make
    #: full-list comparisons trivially perfect, so the universe is kept
    #: several times larger than the lists.
    list_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.n_sites < 100:
            raise ValueError("n_sites must be at least 100")
        if self.n_days < 1:
            raise ValueError("n_days must be at least 1")
        if not 0 <= self.start_weekday <= 6:
            raise ValueError("start_weekday must be in 0..6")
        if len(self.bucket_fractions) != len(self.bucket_labels):
            raise ValueError("bucket_fractions and bucket_labels must align")
        if any(not 0 < f <= 1 for f in self.bucket_fractions):
            raise ValueError("bucket_fractions must lie in (0, 1]")
        if list(self.bucket_fractions) != sorted(self.bucket_fractions):
            raise ValueError("bucket_fractions must be increasing")
        if self.zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be positive")

    @property
    def bucket_sizes(self) -> Tuple[int, ...]:
        """Concrete bucket sizes for this universe, smallest first."""
        return tuple(max(10, round(self.list_length * f)) for f in self.bucket_fractions)

    @property
    def list_length(self) -> int:
        """Number of entries each provider publishes."""
        return max(10, round(self.n_sites * self.list_fraction))

    def weekday_of(self, day: int) -> int:
        """Weekday (0=Monday) of simulated day index ``day``."""
        return (self.start_weekday + day) % 7

    def is_weekend(self, day: int) -> bool:
        """True when ``day`` falls on Saturday or Sunday."""
        return self.weekday_of(day) >= 5

    def scaled(self, **overrides: object) -> "WorldConfig":
        """A copy of this config with the given fields replaced."""
        from dataclasses import replace

        return replace(self, **overrides)  # type: ignore[arg-type]

    @classmethod
    def from_args(cls, args: object, base: Optional["WorldConfig"] = None) -> "WorldConfig":
        """Fold parsed CLI arguments into one config carrier.

        Reads the conventional world attributes (``sites``, ``days``,
        ``seed``) off an ``argparse.Namespace``-like object; attributes
        that are absent or None keep the base config's value.  This is the
        single seam between argument plumbing and the keyword-only
        pipeline API (:func:`repro.core.pipeline.experiment_context`).

        Args:
            args: any object with optional ``sites``/``days``/``seed``
              attributes.
            base: the config supplying defaults (a fresh default
              :class:`WorldConfig` when omitted).
        """
        base = base if base is not None else cls()
        overrides = {}
        for attr, fld in (("sites", "n_sites"), ("days", "n_days"), ("seed", "seed")):
            value = getattr(args, attr, None)
            if value is not None:
                overrides[fld] = int(value)
        return base.scaled(**overrides) if overrides else base

    # --- canonical serialization -----------------------------------------

    def to_json(self) -> str:
        """Canonical JSON encoding: sorted keys, compact separators.

        The encoding is byte-stable across processes and field orderings,
        which is what makes it usable as a cache-key payload for the
        artifact store (:mod:`repro.store`).  Tuples encode as JSON arrays.
        """
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        for key, value in payload.items():
            if isinstance(value, tuple):
                payload[key] = list(value)
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "WorldConfig":
        """Rebuild a config from :meth:`to_json` output.

        Unknown keys are rejected (a config written by a newer schema must
        not silently round-trip through an older one).

        Raises:
            ValueError: on unknown fields or non-object payloads.
        """
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("config payload must be a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown config fields: {', '.join(unknown)}")
        for key, value in data.items():
            if isinstance(value, list):
                data[key] = tuple(value)
        return cls(**data)
