"""The client population: who browses, from where, on what.

Clients are modelled as (country, platform) segments rather than individual
agents at bench scale; the event-level simulator samples concrete clients
from these segments when record-level logs are wanted.  Segment structure is
what drives the paper's Section 6 bias analyses:

* platform split (Windows desktop vs Android mobile) per country;
* Chrome's share (the CrUX/telemetry panel);
* Alexa's extension panel density (desktop-only, very uneven by country);
* enterprise network share (Umbrella's weekday-heavy, category-filtered
  client base).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Tuple

import numpy as np

from repro.worldgen.config import WorldConfig
from repro.worldgen.countries import COUNTRIES

__all__ = ["ClientPopulation", "build_clients", "PLATFORMS"]

#: Platform axis used throughout the telemetry analysis; the paper pairs
#: one desktop OS (Windows) with one mobile OS (Android).
PLATFORMS: Tuple[str, ...] = ("windows", "android")


@dataclass
class ClientPopulation:
    """Aggregate client segments.

    Attributes:
        counts: ``[n_countries, n_platforms]`` unique clients per segment.
        enterprise_frac: per-country fraction of desktop clients on
          enterprise networks.
        chrome_share: per-country Chrome browser share.
        alexa_panel_rate: per-country relative Alexa extension density.
        umbrella_share: per-country share of Umbrella's client base.
        secrank_share: per-country share of the Secrank resolver's base.
    """

    counts: np.ndarray
    enterprise_frac: np.ndarray
    chrome_share: np.ndarray
    alexa_panel_rate: np.ndarray
    umbrella_share: np.ndarray
    secrank_share: np.ndarray

    @property
    def n_countries(self) -> int:
        """Number of modelled countries (including rest-of-world)."""
        return self.counts.shape[0]

    @property
    def total_clients(self) -> float:
        """Total unique clients across all segments."""
        return float(self.counts.sum())

    def country_clients(self) -> np.ndarray:
        """Unique clients per country, summed over platforms."""
        return self.counts.sum(axis=1)

    def platform_split(self) -> np.ndarray:
        """``[n_countries]`` mobile share of each country's clients."""
        totals = self.counts.sum(axis=1)
        return np.divide(
            self.counts[:, 1],
            totals,
            out=np.zeros_like(totals),
            where=totals > 0,
        )

    def chrome_panel_clients(self) -> np.ndarray:
        """``[n_countries, n_platforms]`` Chrome sync-enabled panel sizes.

        Chrome telemetry covers users who opted into history sync with
        statistics reporting; we model that as a fixed fraction of each
        country's Chrome users.
        """
        sync_optin = 0.25
        return self.counts * self.chrome_share[:, None] * sync_optin

    def alexa_panel_clients(self) -> np.ndarray:
        """Per-country Alexa panel sizes (desktop only; extensions don't
        meaningfully exist on mobile browsers)."""
        base_rate = 0.002
        return self.counts[:, 0] * self.alexa_panel_rate * base_rate

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """All segment arrays, keyed by field name."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "ClientPopulation":
        """Rebuild a population from :meth:`to_arrays` output."""
        return cls(**{f.name: np.asarray(arrays[f.name]) for f in fields(cls)})


def build_clients(config: WorldConfig, rng: np.random.Generator) -> ClientPopulation:
    """Build the client population for ``config``.

    The random stream only jitters segment sizes slightly; the structural
    parameters come from the country table.
    """
    n_c = len(COUNTRIES)
    pop_share = np.array([c.web_population_share for c in COUNTRIES])
    android = np.array([c.android_share for c in COUNTRIES])
    jitter = rng.lognormal(0.0, 0.03, size=n_c)

    country_totals = config.n_clients * pop_share * jitter
    counts = np.empty((n_c, len(PLATFORMS)), dtype=np.float64)
    counts[:, 0] = country_totals * (1.0 - android)
    counts[:, 1] = country_totals * android

    return ClientPopulation(
        counts=counts,
        enterprise_frac=np.array([c.enterprise_share for c in COUNTRIES]),
        chrome_share=np.array([c.chrome_share for c in COUNTRIES]),
        alexa_panel_rate=np.array([c.alexa_panel_rate for c in COUNTRIES]),
        umbrella_share=np.array([c.umbrella_client_share for c in COUNTRIES]),
        secrank_share=np.array([c.secrank_client_share for c in COUNTRIES]),
    )
