"""Popularity distributions and count-sampling helpers.

Website popularity is famously heavy-tailed; we model the true popularity of
the site universe as a Zipf-Mandelbrot distribution whose exponent is a
config knob.  This module also centralizes the noisy-count sampling used by
every vantage point: expected values are turned into observed integer counts
with Poisson statistics (switching to a normal approximation for large
means, where the distinction is invisible but the speed difference is not).
"""

from __future__ import annotations

import numpy as np

__all__ = ["zipf_weights", "sample_counts", "lognormal_factors"]


def zipf_weights(n: int, exponent: float, shift: float = 2.0) -> np.ndarray:
    """Normalized Zipf-Mandelbrot weights for ranks ``1..n``.

    Args:
        n: number of items.
        exponent: the power-law exponent ``s`` in ``1 / (rank + shift)^s``.
        shift: the Mandelbrot flattening parameter; keeps the head finite.

    Returns:
        A float64 array of length ``n`` summing to 1, decreasing in rank.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks + shift, exponent)
    weights /= weights.sum()
    return weights


#: Above this expected count, Poisson sampling switches to its normal
#: approximation (relative error < 1% while being ~10x faster in bulk).
_NORMAL_APPROX_THRESHOLD = 1e4


def sample_counts(rng: np.random.Generator, expected: np.ndarray) -> np.ndarray:
    """Sample observed integer counts around elementwise expectations.

    Uses exact Poisson sampling for small means and a normal approximation
    for large means.  Negative expectations are treated as zero.

    Args:
        rng: the random stream to draw from.
        expected: elementwise expected counts (any shape).

    Returns:
        A float64 array of the same shape with non-negative integer values.
    """
    expected = np.asarray(expected, dtype=np.float64)
    expected = np.where(expected > 0, expected, 0.0)
    out = np.empty_like(expected)
    small = expected < _NORMAL_APPROX_THRESHOLD
    if small.any():
        out[small] = rng.poisson(expected[small])
    large = ~small
    if large.any():
        mean = expected[large]
        out[large] = np.rint(rng.normal(mean, np.sqrt(mean)))
    np.maximum(out, 0.0, out=out)
    return out


def lognormal_factors(rng: np.random.Generator, sigma: float, size: int) -> np.ndarray:
    """Unit-median multiplicative noise factors.

    Args:
        rng: the random stream to draw from.
        sigma: the sigma of ``log`` of the factor; 0 returns all-ones.
        size: number of factors.

    Returns:
        Strictly positive float64 factors with median 1.
    """
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    if sigma == 0:
        return np.ones(size, dtype=np.float64)
    return rng.lognormal(mean=0.0, sigma=sigma, size=size)
