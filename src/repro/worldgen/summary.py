"""World introspection: a human-readable summary of a generated universe.

``repro summary`` prints it; notebooks and debugging sessions can call
:func:`summarize_world` directly.  The summary answers the questions a
reader asks before trusting any experiment: how big is the web, who hosts
it, what categories dominate the head, how much of it does Cloudflare
serve, and what do the lists look like.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.report import format_table
from repro.weblib.categories import CATEGORIES
from repro.worldgen.countries import COUNTRIES
from repro.worldgen.nametable import NameKind
from repro.worldgen.world import World

__all__ = ["summarize_world"]


def _adoption_by_band(world: World) -> List[List[object]]:
    rows = []
    n = world.n_sites
    bands = [(0, n // 100), (n // 100, n // 10), (n // 10, n // 2), (n // 2, n)]
    labels = ["top 1%", "1-10%", "10-50%", "tail"]
    for label, (lo, hi) in zip(labels, bands):
        if hi > lo:
            rate = 100.0 * world.sites.cf_served[lo:hi].mean()
            rows.append([label, f"{lo + 1}-{hi}", rate])
    return rows


def summarize_world(world: World, head: int = 5) -> str:
    """Render the world summary as printable text."""
    sites = world.sites
    names = world.names
    config = world.config

    sections: List[str] = []
    sections.append(
        f"universe: {world.n_sites} sites, {config.n_days} days, "
        f"seed {config.seed}; lists of {config.list_length} entries; "
        f"magnitudes {dict(zip(config.bucket_labels, config.bucket_sizes))}"
    )
    top_names = ", ".join(sites.names[:head])
    sections.append(f"true top {head}: {top_names}")

    # Category mix: overall vs top 1%.
    head_n = max(50, world.n_sites // 100)
    rows = []
    for idx, category in enumerate(CATEGORIES):
        overall = 100.0 * float((sites.category == idx).mean())
        at_top = 100.0 * float((sites.category[:head_n] == idx).mean())
        if overall >= 1.0 or at_top >= 1.0:
            rows.append([category.name, overall, at_top])
    rows.sort(key=lambda r: -r[2])
    sections.append(format_table(
        ["category", "% of universe", f"% of top {head_n}"], rows[:10],
        title="category mix (10 largest at the head)",
    ))

    # Country mix.
    rows = []
    for idx, country in enumerate(COUNTRIES):
        hosted = 100.0 * float((sites.home_country == idx).mean())
        rows.append([country.code, hosted, 100.0 * country.web_population_share])
    sections.append(format_table(
        ["country", "% of sites", "% of users"], rows,
        title="geography (sites hosted vs users)",
    ))

    # Cloudflare adoption by popularity band.
    sections.append(format_table(
        ["band", "ranks", "% on cloudflare"], _adoption_by_band(world),
        title=f"cloudflare adoption (overall {100 * sites.cf_served.mean():.1f}%)",
    ))

    # Name-table inventory.
    kinds = {
        "registrable domains": int((names.kind == NameKind.DOMAIN).sum()),
        "FQDNs": int((names.kind == NameKind.FQDN).sum()),
        "origins": int((names.kind == NameKind.ORIGIN).sum()),
        "infra/chaff DNS names": int((names.dns_weight > 0).sum()),
    }
    sections.append(format_table(
        ["name kind", "count"], [[k, v] for k, v in kinds.items()],
        title="name table",
    ))

    # Request-shape spread (why the CF metrics disagree).
    shape = [
        ["requests per pageload", float(np.median(sites.subres_mult)),
         float(np.percentile(sites.subres_mult, 95))],
        ["root-load fraction", float(np.median(sites.root_frac)),
         float(np.percentile(sites.root_frac, 95))],
        ["TLS per pageload", float(np.median(sites.tls_per_pageload)),
         float(np.percentile(sites.tls_per_pageload, 95))],
        ["bot share of requests", float(np.median(sites.bot_share)),
         float(np.percentile(sites.bot_share, 95))],
        ["mobile share", float(np.median(sites.mobile_share)),
         float(np.percentile(sites.mobile_share, 95))],
    ]
    sections.append(format_table(
        ["request-shape parameter", "median", "p95"], shape,
        title="request shape (drives intra-CF metric disagreement)",
    ))
    return "\n\n".join(sections)
