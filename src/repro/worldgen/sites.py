"""The site universe: ground-truth attributes of every website.

Sites are indexed ``0..n_sites-1`` in decreasing order of *true* global
popularity, so a site's index is its true global rank minus one.  All
attributes are parallel numpy arrays; nothing downstream ever loops over
sites in Python at bench scale.

The per-site request-shape parameters (subresource multiplier, root-page
fraction, TLS sessions per pageload, HTML fraction, ...) are what make the
paper's seven Cloudflare metrics disagree with one another: two sites with
identical pageloads can differ by an order of magnitude in raw requests.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List

import numpy as np

from repro.weblib.categories import CATEGORIES
from repro.worldgen.config import WorldConfig
from repro.worldgen.countries import COUNTRIES
from repro.worldgen.names import generate_site_names
from repro.worldgen.zipf import zipf_weights

__all__ = ["SiteUniverse", "build_sites"]

# Category multipliers on Cloudflare adoption: government and education run
# their own infrastructure; adult and gambling sites disproportionately use
# Cloudflare's DDoS protection.
_CF_CATEGORY_MULT = {
    "government": 0.45,
    "education": 0.55,
    "adult": 1.20,
    "gambling": 1.15,
    "abuse": 1.05,
    "parked": 0.85,
}


@dataclass
class SiteUniverse:
    """Parallel arrays describing every site; index = true global rank - 1.

    Attributes (all length ``n_sites`` unless noted):
        names: registrable domain of each site.
        weight: true global popularity weight (sums to 1, decreasing).
        category: index into :data:`repro.weblib.categories.CATEGORIES`.
        home_country: index into :data:`repro.worldgen.countries.COUNTRIES`.
        locality: fraction of the site's traffic from its home country.
        country_share: ``[n_sites, n_countries]`` traffic-origin shares,
          rows summing to 1.
        subres_mult: HTTP requests per pageload (>= 1).
        root_frac: fraction of pageloads that are root (``GET /``) loads.
        tls_per_pageload: TLS handshakes per pageload (1..subres_mult).
        html_frac: fraction of requests with ``text/html`` responses.
        success_rate: fraction of requests answered 2xx.
        referer_null_frac: fraction of requests with no Referer header.
        bot_share: fraction of the site's *requests* issued by non-browsers.
        browser5_frac: fraction of requests from the top-5 browsers.
        mobile_share: fraction of pageloads from mobile platforms.
        completion_rate: completed / initiated pageloads (Chrome telemetry).
        dwell_seconds: mean time-on-page.
        private_rate: fraction of visits in private browsing windows.
        work_affinity: how office-hours-shaped the site's audience is
          (0 = leisure, 1 = strictly workweek).
        enterprise_block: fraction of enterprise networks blocking the site.
        robots_public: whether Chrome telemetry may include the site.
        backlink_score: latent log-scale link-authority score.
        backlinks: integer backlink counts (Majestic's raw material).
        cf_served: whether Cloudflare authoritatively serves the site.
    """

    names: List[str]
    weight: np.ndarray
    category: np.ndarray
    home_country: np.ndarray
    locality: np.ndarray
    country_share: np.ndarray
    subres_mult: np.ndarray
    root_frac: np.ndarray
    tls_per_pageload: np.ndarray
    html_frac: np.ndarray
    success_rate: np.ndarray
    referer_null_frac: np.ndarray
    bot_share: np.ndarray
    browser5_frac: np.ndarray
    mobile_share: np.ndarray
    completion_rate: np.ndarray
    dwell_seconds: np.ndarray
    private_rate: np.ndarray
    work_affinity: np.ndarray
    enterprise_block: np.ndarray
    robots_public: np.ndarray
    backlink_score: np.ndarray
    backlinks: np.ndarray
    cf_served: np.ndarray

    @property
    def n_sites(self) -> int:
        """Number of sites in the universe."""
        return len(self.weight)

    def true_rank(self, site: int) -> int:
        """True global popularity rank (1-based) of a site index."""
        return site + 1

    def cf_indices(self) -> np.ndarray:
        """Indices of Cloudflare-served sites, most popular first."""
        return np.flatnonzero(self.cf_served)

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """All attributes as numpy arrays (names as a unicode array)."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["names"] = np.asarray(self.names, dtype=np.str_)
        return out

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "SiteUniverse":
        """Rebuild a universe from :meth:`to_arrays` output."""
        kwargs = {f.name: np.asarray(arrays[f.name]) for f in fields(cls)}
        kwargs["names"] = [str(name) for name in arrays["names"]]
        return cls(**kwargs)


def _country_share_matrix(
    locality: np.ndarray,
    home_country: np.ndarray,
    rng: np.random.Generator,
    taste_sigma: float = 1.0,
) -> np.ndarray:
    """Rows: share of each site's traffic originating in each country.

    Beyond the home-country concentration (``locality``), each country has
    its own idiosyncratic taste for each foreign site (lognormal noise).
    Without this, every country would rank foreign sites identically and a
    single-country vantage point like Secrank's would look deceptively
    global; with it, the Figure 7 country biases have something to bite on.
    """
    pop = np.array([c.web_population_share for c in COUNTRIES], dtype=np.float64)
    n = len(locality)
    shares = np.empty((n, len(COUNTRIES)), dtype=np.float64)
    # Non-home traffic is spread over other countries by population,
    # modulated by per-(site, country) taste.
    taste = rng.lognormal(0.0, taste_sigma, size=(n, len(COUNTRIES)))
    rest = pop[None, :] * taste
    rest[np.arange(n), home_country] = 0.0
    rest *= ((1.0 - locality) / rest.sum(axis=1))[:, None]
    shares[:] = rest
    shares[np.arange(n), home_country] = locality
    shares /= shares.sum(axis=1, keepdims=True)
    return shares


def _cf_adoption_probability(config: WorldConfig, n: int) -> np.ndarray:
    """Rank-dependent Cloudflare adoption curve.

    Adoption is low among the global giants (which build their own CDNs),
    peaks in the upper-middle of the distribution, and settles to a floor in
    the tail — consistent with the paper's Table 1 coverage profile.
    """
    ranks = np.arange(1, n + 1, dtype=np.float64)
    log_rank = np.log10(ranks)
    peak_at = np.log10(max(2.0, 0.01 * n))
    width = 1.4
    bump = np.exp(-0.5 * ((log_rank - peak_at) / width) ** 2)
    return config.cf_adoption_floor + (config.cf_adoption_peak - config.cf_adoption_floor) * bump


def build_sites(config: WorldConfig, rng: np.random.Generator) -> SiteUniverse:
    """Generate the site universe for ``config``.

    The returned universe is sorted by true global popularity (index 0 is
    the most popular site in the world).
    """
    n = config.n_sites
    prevalence = np.array([c.prevalence for c in CATEGORIES], dtype=np.float64)
    tilt = np.array([c.popularity_tilt for c in CATEGORIES], dtype=np.float64)

    category = rng.choice(len(CATEGORIES), size=n, p=prevalence)

    # True popularity: Zipf over a random permutation, tilted by category,
    # then re-sorted so index order equals true rank order.
    base = zipf_weights(n, config.zipf_exponent)
    perm = rng.permutation(n)
    raw = base[perm] * tilt[category]
    order = np.argsort(-raw, kind="stable")
    category = category[order]
    weight = raw[order]
    weight = weight / weight.sum()

    # Sites are homed by the country's share of the world's *websites*,
    # which is very different from its share of users (Japan hosts far
    # more sites than its user base implies).
    site_share = np.array([c.site_share for c in COUNTRIES], dtype=np.float64)
    home_country = rng.choice(len(COUNTRIES), size=n, p=site_share)

    # Locality: home-country traffic concentration.  Globally top-ranked
    # sites are more international; deep-tail sites are more local.
    locality_mean = np.array([c.locality_mean for c in COUNTRIES], dtype=np.float64)
    rank_frac = (np.arange(n) + 1) / n
    global_damp = 0.45 + 0.55 / (1.0 + np.exp(-(np.log10(rank_frac * n + 1) - 1.5)))
    locality = locality_mean[home_country] * global_damp + rng.normal(0.0, 0.08, size=n)
    np.clip(locality, 0.05, 0.97, out=locality)
    country_share = _country_share_matrix(locality, home_country, rng)

    # Request-shape parameters.
    subres_mult = np.exp(rng.normal(np.log(20.0), 1.7, size=n))
    parked = category == _category_idx("parked")
    subres_mult[parked] = np.exp(rng.normal(np.log(3.0), 0.5, size=int(parked.sum())))
    np.clip(subres_mult, 1.0, 600.0, out=subres_mult)

    root_frac = 0.01 + 0.96 * rng.beta(0.9, 4.0, size=n)
    tls_exponent = rng.uniform(0.15, 0.75, size=n)
    tls_per_pageload = np.power(subres_mult, tls_exponent)
    np.clip(tls_per_pageload, 1.0, subres_mult, out=tls_per_pageload)

    html_frac = (1.0 + rng.uniform(0.2, 1.5, size=n)) / subres_mult + 0.02 * rng.random(n)
    np.clip(html_frac, 0.01, 0.95, out=html_frac)

    success_rate = rng.beta(60.0, 3.0, size=n)
    referer_null_frac = root_frac * rng.uniform(0.5, 1.2, size=n) + 0.05
    np.clip(referer_null_frac, 0.02, 0.9, out=referer_null_frac)

    bot_share = rng.beta(2.0, 12.0, size=n)
    abuse_like = parked | (category == _category_idx("abuse"))
    bot_share[abuse_like] = np.clip(bot_share[abuse_like] + 0.30, 0.0, 0.85)
    browser5_frac = (1.0 - bot_share) * rng.uniform(0.93, 0.99, size=n)

    mobile_tilt = np.array([c.mobile_tilt for c in CATEGORIES], dtype=np.float64)
    android = np.array([c.android_share for c in COUNTRIES], dtype=np.float64)
    mobile_share = mobile_tilt[category] * (country_share @ android)
    np.clip(mobile_share, 0.03, 0.97, out=mobile_share)

    completion_rate = rng.uniform(0.70, 0.97, size=n)
    dwell_base = np.array([c.dwell_seconds for c in CATEGORIES], dtype=np.float64)
    dwell_seconds = dwell_base[category] * np.exp(rng.normal(0.0, 0.4, size=n))

    private_base = np.array([c.private_browsing_rate for c in CATEGORIES], dtype=np.float64)
    private_rate = np.clip(private_base[category] + rng.normal(0.0, 0.03, size=n), 0.0, 0.95)

    work_base = np.array([c.work_affinity for c in CATEGORIES], dtype=np.float64)
    work_affinity = np.clip(work_base[category] + rng.normal(0.0, 0.08, size=n), 0.0, 1.0)

    enterprise_base = np.array([c.enterprise_blocked_rate for c in CATEGORIES], dtype=np.float64)
    enterprise_block = np.clip(enterprise_base[category] + rng.normal(0.0, 0.02, size=n), 0.0, 1.0)

    robots_base = np.array([c.robots_public_rate for c in CATEGORIES], dtype=np.float64)
    robots_public = rng.random(n) < robots_base[category]

    # Backlinks: correlated with popularity only as far as the configured
    # link fidelity allows, and strongly tilted by category propensity.
    log_w = np.log(weight)
    z = (log_w - log_w.mean()) / log_w.std()
    fidelity = config.majestic_link_fidelity
    link_noise = rng.normal(0.0, 1.0, size=n)
    propensity = np.array([c.backlink_propensity for c in CATEGORIES], dtype=np.float64)
    backlink_score = (
        fidelity * z
        + np.sqrt(max(0.0, 1.0 - fidelity**2)) * link_noise
        + np.log10(propensity[category])
    )
    backlinks = np.rint(np.power(10.0, 2.2 + 1.1 * backlink_score)).astype(np.int64)
    np.clip(backlinks, 0, None, out=backlinks)

    # Cloudflare adoption.
    cf_mult = np.array(
        [_CF_CATEGORY_MULT.get(c.name, 1.0) for c in CATEGORIES], dtype=np.float64
    )
    country_mult = np.array([c.cf_adoption_mult for c in COUNTRIES], dtype=np.float64)
    adoption_p = (
        _cf_adoption_probability(config, n)
        * cf_mult[category]
        * country_mult[home_country]
    )
    np.clip(adoption_p, 0.0, 0.9, out=adoption_p)
    cf_served = rng.random(n) < adoption_p
    cf_served[: config.cf_excluded_giants] = False

    names = generate_site_names(rng, home_country, category)

    return SiteUniverse(
        names=names,
        weight=weight,
        category=category.astype(np.int16),
        home_country=home_country.astype(np.int16),
        locality=locality,
        country_share=country_share,
        subres_mult=subres_mult,
        root_frac=root_frac,
        tls_per_pageload=tls_per_pageload,
        html_frac=html_frac,
        success_rate=success_rate,
        referer_null_frac=referer_null_frac,
        bot_share=bot_share,
        browser5_frac=browser5_frac,
        mobile_share=mobile_share,
        completion_rate=completion_rate,
        dwell_seconds=dwell_seconds,
        private_rate=private_rate,
        work_affinity=work_affinity,
        enterprise_block=enterprise_block,
        robots_public=robots_public,
        backlink_score=backlink_score,
        backlinks=backlinks,
        cf_served=cf_served,
    )


def _category_idx(name: str) -> int:
    for i, cat in enumerate(CATEGORIES):
        if cat.name == name:
            return i
    raise KeyError(name)
