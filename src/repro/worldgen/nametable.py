"""The name table: every name any vantage point can rank.

Top lists rank three kinds of objects (Section 4.2): registrable domains,
FQDNs (Umbrella), and web origins (CrUX).  The name table materializes the
full naming structure of the synthetic world once, so that providers can
publish lists of name ids and the normalization pipeline can map ids back to
sites without re-parsing strings every simulated day.

The table also carries pure-infrastructure DNS names (bare TLDs, NTP pools,
OS telemetry endpoints) with ``site == -1``: they dominate the head of
DNS-derived lists like Umbrella's — ``.com`` is ranked #1 — and inflate its
PSL-deviation statistics in Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.worldgen.config import WorldConfig
from repro.worldgen.names import SUBDOMAIN_POOL, WEB_FACING_SUBDOMAINS
from repro.worldgen.sites import SiteUniverse

__all__ = ["NameKind", "NameTable", "build_name_table", "INFRA_DNS_NAMES"]


class NameKind:
    """Integer tags for name-table rows."""

    DOMAIN = 0
    FQDN = 1
    ORIGIN = 2


#: Pure-DNS infrastructure names and their relative query weight (fraction
#: of *all* DNS queries, roughly).  These are never websites.
INFRA_DNS_NAMES: Tuple[Tuple[str, float], ...] = (
    ("com", 0.060),
    ("net", 0.018),
    ("org", 0.008),
    ("arpa", 0.006),
    ("in-addr.arpa", 0.005),
    ("root-servers.net", 0.004),
    ("pool.ntp.org", 0.0035),
    ("time.windows.com", 0.003),
    ("ctldl.windowsupdate.com", 0.0028),
    ("settings-win.data.microsoft.com", 0.0026),
    ("mtalk.google.com", 0.0025),
    ("connectivity-check.ubuntu.com", 0.0012),
    ("detectportal.firefox.com", 0.0012),
    ("ocsp.digicert.com", 0.0022),
    ("ocsp.pki.goog", 0.0018),
    ("safebrowsing.googleapis.com", 0.0020),
    ("update.googleapis.com", 0.0018),
    ("api.push.apple.com", 0.0016),
    ("gateway.icloud.com", 0.0012),
    ("cdn.jsdelivr.net", 0.0010),
    ("fonts.gstatic.com", 0.0015),
    ("dns.msftncsi.com", 0.0011),
)


_CHAFF_SERVICES = (
    "push", "telemetry", "api", "sync", "cdn", "events", "metrics", "ota",
    "ads", "beacon", "config", "edge", "ingest", "mqtt", "ws", "stun",
)
_CHAFF_VENDORS = (
    "appvendor", "mobilesdk", "smarttv", "iothub", "adnet", "cloudsvc",
    "devicecorp", "gamesdk", "castbox", "wearables", "routerco", "carplay",
)
_CHAFF_TLDS = ("com", "net", "io", "cloud", "dev")


def _generate_dns_chaff(
    config: WorldConfig, rng: np.random.Generator
) -> List[Tuple[str, float]]:
    """Non-website DNS names with standalone query weights.

    Phones, TVs, SDKs, and routers resolve service endpoints constantly;
    these names rank highly on DNS-derived lists but host no website.
    Weights are log-uniform so the chaff interleaves throughout the
    Umbrella ranking rather than clustering.
    """
    count = int(round(config.n_sites * config.dns_chaff_fraction))
    if count <= 0:
        return []
    out: List[Tuple[str, float]] = []
    weights = np.exp(
        rng.uniform(np.log(2e-7), np.log(2.5e-5), size=count)
    )
    for i in range(count):
        service = _CHAFF_SERVICES[int(rng.integers(len(_CHAFF_SERVICES)))]
        vendor = _CHAFF_VENDORS[int(rng.integers(len(_CHAFF_VENDORS)))]
        tld = _CHAFF_TLDS[int(rng.integers(len(_CHAFF_TLDS)))]
        shard = int(rng.integers(0, 64))
        out.append((f"{service}-{shard}.{vendor}{i}.{tld}", float(weights[i])))
    return out


@dataclass
class NameTable:
    """All rankable names, as parallel arrays.

    Attributes:
        strings: the name's textual form (domain, FQDN, or serialized
          origin) per row.
        site: owning site index, or -1 for infrastructure names.
        kind: one of :class:`NameKind`.
        share: for FQDN/origin rows, the fraction of the owning site's
          traffic attributable to this name; 1.0 for domain rows.
        dns_weight: for infrastructure rows, absolute DNS query weight;
          0 elsewhere.
    """

    strings: List[str]
    site: np.ndarray
    kind: np.ndarray
    share: np.ndarray
    dns_weight: np.ndarray

    def __len__(self) -> int:
        return len(self.strings)

    def rows_of_kind(self, kind: int) -> np.ndarray:
        """Row indices of a given :class:`NameKind`, in table order."""
        return np.flatnonzero(self.kind == kind)

    def domain_row_of_site(self, site: int) -> int:
        """The domain row for a site (domain rows lead the table in order)."""
        return site

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """All columns as numpy arrays (strings as a unicode array)."""
        return {
            "strings": np.asarray(self.strings, dtype=np.str_),
            "site": self.site,
            "kind": self.kind,
            "share": self.share,
            "dns_weight": self.dns_weight,
        }

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "NameTable":
        """Rebuild a table from :meth:`to_arrays` output."""
        return cls(
            strings=[str(s) for s in arrays["strings"]],
            site=np.asarray(arrays["site"]),
            kind=np.asarray(arrays["kind"]),
            share=np.asarray(arrays["share"]),
            dns_weight=np.asarray(arrays["dns_weight"]),
        )

    def lookup(self, text: str) -> Optional[int]:
        """Row index of an exact name string, or None.

        A site's apex appears both as its domain row and as an FQDN row;
        the earliest row (the domain row, given the layout invariant) wins.
        """
        if not hasattr(self, "_index"):
            index: Dict[str, int] = {}
            for i, s in enumerate(self.strings):
                index.setdefault(s, i)
            self._index = index
        return self._index.get(text)


def build_name_table(
    config: WorldConfig, sites: SiteUniverse, rng: np.random.Generator
) -> NameTable:
    """Construct the name table for a site universe.

    Layout invariant: rows ``0..n_sites-1`` are the registrable-domain rows
    in site order; FQDN rows follow; origin rows follow; infrastructure
    rows come last.
    """
    n = sites.n_sites
    strings: List[str] = list(sites.names)
    site_ids: List[int] = list(range(n))
    kinds: List[int] = [NameKind.DOMAIN] * n
    shares: List[float] = [1.0] * n
    dns_weights: List[float] = [0.0] * n

    pool = [label for label in SUBDOMAIN_POOL if label != "www"]

    # Draw per-site FQDN structure.
    www_primary = rng.random(n) < config.www_primary_prob
    extra_counts = np.minimum(rng.poisson(config.mean_extra_fqdns, size=n), 6)
    primary_share = 0.55 + 0.40 * rng.beta(5.0, 2.0, size=n)
    http_origin = rng.random(n) < config.http_origin_prob
    http_share = rng.uniform(0.05, 0.30, size=n)

    fqdn_rows: List[Tuple[int, str, float]] = []  # (site, host, share)
    origin_rows: List[Tuple[int, str, float]] = []

    for i in range(n):
        domain = sites.names[i]
        p_share = float(primary_share[i])
        primary_host = f"www.{domain}" if www_primary[i] else domain
        k = int(extra_counts[i])
        labels = (
            list(rng.choice(pool, size=min(k, len(pool)), replace=False)) if k else []
        )
        # The non-primary apex (or www) also sees a sliver of traffic.
        alt_host = domain if www_primary[i] else f"www.{domain}"
        remainder = 1.0 - p_share
        if labels:
            cuts = rng.dirichlet(np.ones(len(labels) + 1)) * remainder
            alt_share = float(cuts[0])
            label_shares = cuts[1:]
        else:
            alt_share = remainder
            label_shares = np.empty(0)

        fqdn_rows.append((i, primary_host, p_share))
        fqdn_rows.append((i, alt_host, alt_share))
        for label, s in zip(labels, label_shares):
            fqdn_rows.append((i, f"{label}.{domain}", float(s)))

        # Origins: web-facing hosts only.
        primary_origin_share = p_share + alt_share  # apex+www serve one site
        if http_origin[i]:
            split = float(http_share[i])
            origin_rows.append((i, f"https://{primary_host}", primary_origin_share * (1 - split)))
            origin_rows.append((i, f"http://{primary_host}", primary_origin_share * split))
        else:
            origin_rows.append((i, f"https://{primary_host}", primary_origin_share))
        for label, s in zip(labels, label_shares):
            if label in WEB_FACING_SUBDOMAINS:
                origin_rows.append((i, f"https://{label}.{domain}", float(s)))

    for site_idx, host, share in fqdn_rows:
        strings.append(host)
        site_ids.append(site_idx)
        kinds.append(NameKind.FQDN)
        shares.append(share)
        dns_weights.append(0.0)

    for site_idx, origin, share in origin_rows:
        strings.append(origin)
        site_ids.append(site_idx)
        kinds.append(NameKind.ORIGIN)
        shares.append(share)
        dns_weights.append(0.0)

    for name, weight in INFRA_DNS_NAMES:
        strings.append(name)
        site_ids.append(-1)
        kinds.append(NameKind.FQDN)
        shares.append(0.0)
        dns_weights.append(weight)

    for name, weight in _generate_dns_chaff(config, rng):
        strings.append(name)
        site_ids.append(-1)
        kinds.append(NameKind.FQDN)
        shares.append(0.0)
        dns_weights.append(weight)

    return NameTable(
        strings=strings,
        site=np.asarray(site_ids, dtype=np.int32),
        kind=np.asarray(kinds, dtype=np.int8),
        share=np.asarray(shares, dtype=np.float64),
        dns_weight=np.asarray(dns_weights, dtype=np.float64),
    )
