"""Ground-truth web generator.

The paper's analyses all consume views of one underlying object: the real
web, with its true per-site popularity.  Since the real observables
(Cloudflare logs, Chrome telemetry, commercial top lists) are proprietary,
this package generates a synthetic-but-mechanistic replacement: a universe of
websites with true popularity, geography, categories, request-shape
parameters, naming structure (FQDNs and origins), a backlink graph, a client
population, and a Cloudflare-adoption overlay.

Every vantage point in the reproduction (the CDN, the DNS resolvers, the
browser panels, the SEO crawler) observes this same world through its own
documented mechanism, so differences between top lists *emerge* from
mechanism differences rather than being injected as answers.
"""

from repro.worldgen.config import WorldConfig
from repro.worldgen.countries import COUNTRIES, Country, country_index
from repro.worldgen.world import World, build_world

__all__ = [
    "COUNTRIES",
    "Country",
    "World",
    "WorldConfig",
    "build_world",
    "country_index",
]
