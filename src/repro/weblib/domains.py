"""Parsing and validation of DNS names and web origins.

Top lists rank three different kinds of objects (Section 4.2 of the paper):

* registrable domains (Alexa, Majestic, Secrank, Tranco, Trexa),
* fully-qualified domain names (Cisco Umbrella), and
* web origins such as ``https://www.google.com`` (CrUX).

This module provides the small, dependency-free parsing layer that the list
normalization code builds on.  Hostnames are treated case-insensitively and
stored lowercase, per RFC 4343.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = [
    "Origin",
    "ParsedName",
    "is_valid_hostname",
    "parse_name",
    "parse_origin",
    "reverse_labels",
    "split_labels",
]

# A single DNS label: letters, digits, hyphens; no leading/trailing hyphen.
# We additionally accept underscores because real query logs contain them
# (e.g. ``_dmarc.example.com``).
_LABEL_RE = re.compile(r"^(?!-)[a-z0-9_-]{1,63}(?<!-)$")

_SCHEMES = ("https", "http")

DEFAULT_PORTS = {"http": 80, "https": 443}


def split_labels(name: str) -> List[str]:
    """Split a hostname into its dot-separated labels, lowercased.

    A single trailing dot (fully-qualified form) is tolerated and removed.

    >>> split_labels("WWW.Example.COM.")
    ['www', 'example', 'com']
    """
    name = name.strip().lower()
    if name.endswith("."):
        name = name[:-1]
    if not name:
        return []
    return name.split(".")


def reverse_labels(name: str) -> List[str]:
    """Return labels in DNS-tree order (TLD first).

    >>> reverse_labels("www.example.com")
    ['com', 'example', 'www']
    """
    labels = split_labels(name)
    labels.reverse()
    return labels


def is_valid_hostname(name: str) -> bool:
    """Check RFC 1035-style syntactic validity (relaxed to allow underscores).

    The total length limit of 253 characters and the per-label limit of 63
    characters are both enforced.
    """
    name = name.strip().lower()
    if name.endswith("."):
        name = name[:-1]
    if not name or len(name) > 253:
        return False
    labels = name.split(".")
    return all(_LABEL_RE.match(label) for label in labels)


@dataclass(frozen=True)
class ParsedName:
    """A parsed DNS name.

    Attributes:
        host: the normalized (lowercase, no trailing dot) hostname.
        labels: the labels of ``host``, leftmost first.
    """

    host: str
    labels: Tuple[str, ...]

    @property
    def depth(self) -> int:
        """Number of labels in the name (``www.example.com`` -> 3)."""
        return len(self.labels)

    def parent(self) -> Optional["ParsedName"]:
        """The name with the leftmost label removed, or ``None`` at the root.

        >>> parse_name("www.example.com").parent().host
        'example.com'
        """
        if len(self.labels) <= 1:
            return None
        rest = self.labels[1:]
        return ParsedName(host=".".join(rest), labels=rest)

    def is_subdomain_of(self, other: "ParsedName") -> bool:
        """True if this name is a strict subdomain of ``other``."""
        if len(self.labels) <= len(other.labels):
            return False
        return self.labels[len(self.labels) - len(other.labels):] == other.labels

    def __str__(self) -> str:
        return self.host


def parse_name(name: str) -> ParsedName:
    """Parse and validate a hostname.

    Raises:
        ValueError: if the name is not a syntactically valid hostname.
    """
    labels = split_labels(name)
    host = ".".join(labels)
    if not is_valid_hostname(host):
        raise ValueError(f"invalid hostname: {name!r}")
    return ParsedName(host=host, labels=tuple(labels))


@dataclass(frozen=True)
class Origin:
    """A web origin: (scheme, host, port), per RFC 6454.

    CrUX aggregates popularity by origin; ``https://google.com`` and
    ``https://www.google.com`` are distinct origins and distinct CrUX
    entries.
    """

    scheme: str
    host: str
    port: int

    @property
    def is_default_port(self) -> bool:
        """True when the port is the scheme's default (80/443)."""
        return DEFAULT_PORTS.get(self.scheme) == self.port

    def serialize(self) -> str:
        """The canonical ASCII serialization of the origin.

        Default ports are elided, matching how CrUX publishes origins.

        >>> Origin("https", "example.com", 443).serialize()
        'https://example.com'
        """
        if self.is_default_port:
            return f"{self.scheme}://{self.host}"
        return f"{self.scheme}://{self.host}:{self.port}"

    def __str__(self) -> str:
        return self.serialize()


def parse_origin(text: str) -> Origin:
    """Parse an origin string like ``https://www.example.com[:port]``.

    Bare hostnames are rejected: an origin requires a scheme.  Paths,
    queries, and fragments are rejected as well — an origin is not a URL.

    Raises:
        ValueError: on malformed input.
    """
    text = text.strip().lower()
    scheme, sep, rest = text.partition("://")
    if not sep:
        raise ValueError(f"origin must include a scheme: {text!r}")
    if scheme not in _SCHEMES:
        raise ValueError(f"unsupported origin scheme: {scheme!r}")
    if not rest or any(c in rest for c in "/?#"):
        raise ValueError(f"origin must not include a path component: {text!r}")
    host, sep, port_text = rest.partition(":")
    if sep:
        if not port_text.isdigit():
            raise ValueError(f"invalid origin port: {text!r}")
        port = int(port_text)
        if not 0 < port < 65536:
            raise ValueError(f"origin port out of range: {text!r}")
    else:
        port = DEFAULT_PORTS[scheme]
    parsed = parse_name(host)
    return Origin(scheme=scheme, host=parsed.host, port=port)
