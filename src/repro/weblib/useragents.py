"""Browser and User-Agent model.

Section 3.1 of the paper defines a filter restricting HTTP requests to the
five most popular browsers as "a more direct measure of browsing behavior".
This module defines the browser population that the traffic simulators and
the Cloudflare metric engine share, including non-browser agents (bots,
crawlers, API clients) whose presence is exactly why the top-five-browsers
filter changes results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "Browser",
    "BROWSERS",
    "TOP_FIVE_BROWSERS",
    "UserAgent",
    "browser_by_name",
]


@dataclass(frozen=True)
class Browser:
    """A user-agent family.

    Attributes:
        name: canonical family name (``chrome``, ``curl``...).
        is_browser: true for interactive web browsers (as opposed to bots
          and tools).
        is_mobile_capable: whether the family ships on mobile platforms.
        ua_template: a representative User-Agent string template with a
          ``{version}`` placeholder.
        global_share: approximate share of *all* HTTP requests attributed to
          the family, used as a default mixing weight by the traffic
          simulators (world configs may override per country/platform).
    """

    name: str
    is_browser: bool
    is_mobile_capable: bool
    ua_template: str
    global_share: float


BROWSERS: Tuple[Browser, ...] = (
    Browser(
        name="chrome",
        is_browser=True,
        is_mobile_capable=True,
        ua_template=(
            "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 "
            "(KHTML, like Gecko) Chrome/{version} Safari/537.36"
        ),
        global_share=0.52,
    ),
    Browser(
        name="safari",
        is_browser=True,
        is_mobile_capable=True,
        ua_template=(
            "Mozilla/5.0 (iPhone; CPU iPhone OS 15_3 like Mac OS X) "
            "AppleWebKit/605.1.15 (KHTML, like Gecko) Version/{version} Safari/605.1.15"
        ),
        global_share=0.15,
    ),
    Browser(
        name="edge",
        is_browser=True,
        is_mobile_capable=False,
        ua_template=(
            "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 "
            "(KHTML, like Gecko) Chrome/{version} Safari/537.36 Edg/{version}"
        ),
        global_share=0.055,
    ),
    Browser(
        name="firefox",
        is_browser=True,
        is_mobile_capable=True,
        ua_template="Mozilla/5.0 (X11; Linux x86_64; rv:{version}) Gecko/20100101 Firefox/{version}",
        global_share=0.05,
    ),
    Browser(
        name="samsung-internet",
        is_browser=True,
        is_mobile_capable=True,
        ua_template=(
            "Mozilla/5.0 (Linux; Android 12; SM-G991B) AppleWebKit/537.36 "
            "(KHTML, like Gecko) SamsungBrowser/{version} Chrome/96.0 Mobile Safari/537.36"
        ),
        global_share=0.035,
    ),
    Browser(
        name="opera",
        is_browser=True,
        is_mobile_capable=True,
        ua_template=(
            "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 "
            "(KHTML, like Gecko) Chrome/{version} Safari/537.36 OPR/{version}"
        ),
        global_share=0.025,
    ),
    # Non-browser agents: the reason the top-five-browsers filter matters.
    Browser(
        name="googlebot",
        is_browser=False,
        is_mobile_capable=False,
        ua_template="Mozilla/5.0 (compatible; Googlebot/{version}; +http://www.google.com/bot.html)",
        global_share=0.06,
    ),
    Browser(
        name="bingbot",
        is_browser=False,
        is_mobile_capable=False,
        ua_template="Mozilla/5.0 (compatible; bingbot/{version}; +http://www.bing.com/bingbot.htm)",
        global_share=0.025,
    ),
    Browser(
        name="curl",
        is_browser=False,
        is_mobile_capable=False,
        ua_template="curl/{version}",
        global_share=0.04,
    ),
    Browser(
        name="python-requests",
        is_browser=False,
        is_mobile_capable=False,
        ua_template="python-requests/{version}",
        global_share=0.04,
    ),
    Browser(
        name="scrapybot",
        is_browser=False,
        is_mobile_capable=False,
        ua_template="Scrapy/{version} (+https://scrapy.org)",
        global_share=0.035,
    ),
    Browser(
        name="monitoring-agent",
        is_browser=False,
        is_mobile_capable=False,
        ua_template="StatusCake_Agent/{version}",
        global_share=0.015,
    ),
)

_BY_NAME: Dict[str, Browser] = {b.name: b for b in BROWSERS}

#: The "top 5 most popular browsers" of the paper's filter 1.4, by share.
TOP_FIVE_BROWSERS: Tuple[str, ...] = tuple(
    b.name
    for b in sorted(
        (b for b in BROWSERS if b.is_browser),
        key=lambda b: b.global_share,
        reverse=True,
    )[:5]
)


def browser_by_name(name: str) -> Browser:
    """Look up a browser family by canonical name.

    Raises:
        KeyError: for unknown families.
    """
    return _BY_NAME[name]


@dataclass(frozen=True)
class UserAgent:
    """A concrete user agent: a browser family plus a version string."""

    family: str
    version: str

    def header_value(self) -> str:
        """Render the User-Agent request-header value."""
        return browser_by_name(self.family).ua_template.format(version=self.version)

    @property
    def is_top_five_browser(self) -> bool:
        """Whether this agent passes the paper's top-5-browsers filter."""
        return self.family in TOP_FIVE_BROWSERS
