"""An embedded snapshot of Public Suffix List rules.

This is a representative subset of the Mozilla PSL (https://publicsuffix.org)
sufficient for every name that the synthetic world generator emits, plus the
classic tricky cases (wildcard rules, exception rules, multi-level ccTLD
registries, and a few private-section entries).  The snapshot is deliberately
data-only: the matching algorithm lives in :mod:`repro.weblib.psl`.

The format mirrors the upstream file: one rule per line, ``*`` wildcards,
``!`` exceptions, and two sections (ICANN and PRIVATE) which we separate so
callers can opt out of private-domain rules like ``github.io``.
"""

from __future__ import annotations

from typing import Tuple

__all__ = ["ICANN_RULES", "PRIVATE_RULES"]

ICANN_RULES: Tuple[str, ...] = (
    # Generic TLDs.
    "com", "net", "org", "info", "biz", "io", "co", "me", "tv", "cc",
    "app", "dev", "xyz", "site", "online", "shop", "store", "blog",
    "news", "edu", "gov", "mil", "int", "aero", "museum", "travel",
    "jobs", "mobi", "name", "pro", "tel", "cat", "asia", "post",
    "top", "club", "live", "life", "world", "today", "space", "fun",
    "icu", "vip", "work", "cloud", "art", "wiki", "link", "click",
    "design", "agency", "digital", "network", "systems", "solutions",
    "services", "media", "studio", "tech", "ai", "gg", "to", "fm", "ly",
    # United Kingdom.
    "uk", "ac.uk", "co.uk", "gov.uk", "ltd.uk", "me.uk", "net.uk",
    "nhs.uk", "org.uk", "plc.uk", "police.uk", "sch.uk",
    # Japan.
    "jp", "ac.jp", "ad.jp", "co.jp", "ed.jp", "go.jp", "gr.jp", "lg.jp",
    "ne.jp", "or.jp",
    # China.
    "cn", "ac.cn", "com.cn", "edu.cn", "gov.cn", "net.cn", "org.cn",
    "mil.cn",
    # Brazil.
    "br", "app.br", "art.br", "blog.br", "com.br", "dev.br", "eco.br",
    "edu.br", "gov.br", "mil.br", "net.br", "org.br", "tv.br", "wiki.br",
    # Germany and France register directly at the second level.
    "de", "fr", "asso.fr", "com.fr", "gouv.fr", "nom.fr", "prd.fr",
    # India.
    "in", "ac.in", "co.in", "edu.in", "firm.in", "gen.in", "gov.in",
    "ind.in", "mil.in", "net.in", "nic.in", "org.in", "res.in",
    # Indonesia.
    "id", "ac.id", "biz.id", "co.id", "desa.id", "go.id", "mil.id",
    "my.id", "net.id", "or.id", "sch.id", "web.id",
    # Nigeria.
    "ng", "com.ng", "edu.ng", "gov.ng", "i.ng", "mil.ng", "mobi.ng",
    "name.ng", "net.ng", "org.ng", "sch.ng",
    # Egypt.
    "eg", "com.eg", "edu.eg", "eun.eg", "gov.eg", "mil.eg", "name.eg",
    "net.eg", "org.eg", "sci.eg",
    # South Africa.
    "za", "ac.za", "co.za", "edu.za", "gov.za", "law.za", "mil.za",
    "net.za", "nom.za", "org.za", "school.za", "web.za",
    # United States.
    "us", "dni.us", "fed.us", "isa.us", "kids.us", "nsn.us",
    # Russia, Korea, and a few other ccTLDs that appear in DNS logs.
    "ru", "com.ru", "gov.ru", "msk.ru", "net.ru", "org.ru", "spb.ru",
    "kr", "ac.kr", "co.kr", "go.kr", "ne.kr", "or.kr", "pe.kr", "re.kr",
    "mx", "com.mx", "edu.mx", "gob.mx", "net.mx", "org.mx",
    "au", "com.au", "edu.au", "gov.au", "id.au", "net.au", "org.au",
    "nl", "it", "es", "com.es", "edu.es", "gob.es", "nom.es", "org.es",
    "pl", "com.pl", "edu.pl", "gov.pl", "net.pl", "org.pl",
    "ca", "gc.ca", "ch", "se", "no", "fi", "dk", "be", "at", "ir", "tr",
    "com.tr", "edu.tr", "gov.tr", "net.tr", "org.tr",
    "ua", "com.ua", "edu.ua", "gov.ua", "net.ua", "org.ua",
    "vn", "com.vn", "edu.vn", "gov.vn", "net.vn", "org.vn",
    "ar", "com.ar", "edu.ar", "gob.ar", "net.ar", "org.ar",
    # The Cook Islands: the PSL's canonical wildcard + exception example.
    "ck", "*.ck", "!www.ck",
    # Wildcard registries.
    "*.kawasaki.jp", "*.kitakyushu.jp", "!city.kawasaki.jp",
    "!city.kitakyushu.jp",
    "bd", "*.bd", "er", "*.er", "fk", "*.fk", "mm", "*.mm",
)

PRIVATE_RULES: Tuple[str, ...] = (
    # Hosting platforms whose customers are independent sites.
    "github.io", "githubusercontent.com", "gitlab.io",
    "blogspot.com", "wordpress.com", "tumblr.com", "medium.com",
    "herokuapp.com", "netlify.app", "vercel.app", "pages.dev",
    "web.app", "firebaseapp.com", "appspot.com",
    "azurewebsites.net", "cloudfront.net", "amazonaws.com",
    "fastly.net", "workers.dev", "repl.co", "glitch.me",
    "neocities.org", "surge.sh", "readthedocs.io",
    "myshopify.com", "squarespace.com", "wixsite.com", "weebly.com",
    "bandcamp.com", "carrd.co",
)
