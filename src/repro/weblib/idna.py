"""Internationalized domain names: a from-scratch Punycode codec (RFC 3492).

Real top lists carry IDN entries (``bücher.de`` appears as
``xn--bcher-kva.de``), and the Public Suffix List itself contains IDN
rules.  This module implements the Punycode bootstring algorithm and the
IDNA ASCII/Unicode conversions the naming pipeline needs, with the test
suite cross-validating every encoding against Python's built-in codec.

Only the encoding layer of IDNA2003 is implemented (no nameprep case
folding beyond lowercasing); that is sufficient for list entries, which
arrive already normalized.
"""

from __future__ import annotations

from typing import List

__all__ = ["punycode_encode", "punycode_decode", "to_ascii", "to_unicode", "IdnaError"]

# RFC 3492 parameters.
_BASE = 36
_TMIN = 1
_TMAX = 26
_SKEW = 38
_DAMP = 700
_INITIAL_BIAS = 72
_INITIAL_N = 128
_DELIMITER = "-"

_ACE_PREFIX = "xn--"


class IdnaError(ValueError):
    """Raised for inputs the codec cannot represent."""


def _adapt(delta: int, numpoints: int, firsttime: bool) -> int:
    delta = delta // _DAMP if firsttime else delta // 2
    delta += delta // numpoints
    k = 0
    while delta > ((_BASE - _TMIN) * _TMAX) // 2:
        delta //= _BASE - _TMIN
        k += _BASE
    return k + (((_BASE - _TMIN + 1) * delta) // (delta + _SKEW))


def _encode_digit(d: int) -> str:
    # 0..25 -> a..z, 26..35 -> 0..9.
    if d < 26:
        return chr(ord("a") + d)
    if d < 36:
        return chr(ord("0") + d - 26)
    raise IdnaError(f"digit out of range: {d}")


def _decode_digit(c: str) -> int:
    if "a" <= c <= "z":
        return ord(c) - ord("a")
    if "0" <= c <= "9":
        return ord(c) - ord("0") + 26
    if "A" <= c <= "Z":
        return ord(c) - ord("A")
    raise IdnaError(f"invalid punycode digit: {c!r}")


def punycode_encode(text: str) -> str:
    """Encode a Unicode label as a Punycode string (without ACE prefix).

    >>> punycode_encode("bücher")
    'bcher-kva'
    """
    basic = [c for c in text if ord(c) < 128]
    output: List[str] = basic.copy()
    handled = len(basic)
    if basic:
        output.append(_DELIMITER)

    n = _INITIAL_N
    delta = 0
    bias = _INITIAL_BIAS
    first = True
    total = len(text)
    while handled < total:
        m = min(ord(c) for c in text if ord(c) >= n)
        delta += (m - n) * (handled + 1)
        n = m
        for c in text:
            code = ord(c)
            if code < n:
                delta += 1
                if delta == 0:
                    raise IdnaError("punycode overflow")
            elif code == n:
                q = delta
                k = _BASE
                while True:
                    t = _TMIN if k <= bias else (_TMAX if k >= bias + _TMAX else k - bias)
                    if q < t:
                        break
                    output.append(_encode_digit(t + ((q - t) % (_BASE - t))))
                    q = (q - t) // (_BASE - t)
                    k += _BASE
                output.append(_encode_digit(q))
                bias = _adapt(delta, handled + 1, first)
                first = False
                delta = 0
                handled += 1
        delta += 1
        n += 1
    return "".join(output)


def punycode_decode(text: str) -> str:
    """Decode a Punycode string (without ACE prefix) to Unicode.

    >>> punycode_decode("bcher-kva")
    'bücher'
    """
    pos = text.rfind(_DELIMITER)
    if pos > 0:
        output = list(text[:pos])
        encoded = text[pos + 1:]
    else:
        output = []
        encoded = text[1:] if pos == 0 else text
    if any(ord(c) >= 128 for c in output):
        raise IdnaError("basic code points must be ASCII")

    n = _INITIAL_N
    i = 0
    bias = _INITIAL_BIAS
    first = True
    index = 0
    while index < len(encoded):
        old_i = i
        w = 1
        k = _BASE
        while True:
            if index >= len(encoded):
                raise IdnaError("truncated punycode input")
            digit = _decode_digit(encoded[index])
            index += 1
            i += digit * w
            t = _TMIN if k <= bias else (_TMAX if k >= bias + _TMAX else k - bias)
            if digit < t:
                break
            w *= _BASE - t
            k += _BASE
        bias = _adapt(i - old_i, len(output) + 1, first)
        first = False
        n += i // (len(output) + 1)
        i %= len(output) + 1
        if n > 0x10FFFF:
            raise IdnaError("code point out of range")
        output.insert(i, chr(n))
        i += 1
    return "".join(output)


def to_ascii(name: str) -> str:
    """Convert a (possibly international) hostname to its ACE form.

    Pure-ASCII labels pass through; labels with non-ASCII characters are
    lowercased and Punycode-encoded with the ``xn--`` prefix.

    >>> to_ascii("bücher.de")
    'xn--bcher-kva.de'
    """
    labels = name.strip().rstrip(".").split(".")
    out = []
    for label in labels:
        if not label:
            raise IdnaError(f"empty label in {name!r}")
        if all(ord(c) < 128 for c in label):
            out.append(label.lower())
        else:
            encoded = punycode_encode(label.lower())
            ace = _ACE_PREFIX + encoded
            if len(ace) > 63:
                raise IdnaError(f"label too long after encoding: {label!r}")
            out.append(ace)
    return ".".join(out)


def to_unicode(name: str) -> str:
    """Convert an ACE hostname back to its Unicode form.

    Labels without the ``xn--`` prefix pass through.

    >>> to_unicode("xn--bcher-kva.de")
    'bücher.de'
    """
    labels = name.strip().rstrip(".").lower().split(".")
    out = []
    for label in labels:
        if label.startswith(_ACE_PREFIX):
            out.append(punycode_decode(label[len(_ACE_PREFIX):]))
        else:
            out.append(label)
    return ".".join(out)
