"""Public Suffix List matching.

Implements the full PSL algorithm (https://publicsuffix.org/list/) over the
embedded rule snapshot in :mod:`repro.weblib.psl_data`:

1. Match domain labels right-to-left against all rules; a ``*`` label in a
   rule matches any single label.
2. If more than one rule matches, a matching exception rule (``!`` prefix)
   takes priority; otherwise the longest matching rule wins.
3. If no rule matches, the prevailing rule is ``*`` (the unknown-TLD rule).
4. The public suffix is the matched rule's labels (an exception rule's
   suffix is the rule with its leftmost label removed); the registrable
   domain is the public suffix plus one preceding label.

The paper normalizes every top list to PSL registrable domains before
comparison (Section 4.2); Table 2 counts how many raw entries deviate from
their registrable domain under this mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.weblib.domains import split_labels
from repro.weblib.psl_data import ICANN_RULES, PRIVATE_RULES

__all__ = ["PslRule", "PublicSuffixList", "default_psl"]


@dataclass(frozen=True)
class PslRule:
    """A single PSL rule.

    Attributes:
        labels: rule labels, rightmost (TLD) first; ``*`` matches any label.
        is_exception: true for ``!``-prefixed rules.
        is_private: true for rules from the PRIVATE section of the list.
    """

    labels: Tuple[str, ...]
    is_exception: bool
    is_private: bool

    @property
    def match_length(self) -> int:
        """Number of labels the rule constrains (exception rules count all)."""
        return len(self.labels)


class _Node:
    """A node in the reversed-label rule trie."""

    __slots__ = ("children", "rule")

    def __init__(self) -> None:
        self.children: Dict[str, _Node] = {}
        self.rule: Optional[PslRule] = None


def _parse_rule(line: str, is_private: bool) -> PslRule:
    line = line.strip().lower()
    is_exception = line.startswith("!")
    if is_exception:
        line = line[1:]
    labels = tuple(reversed(line.split(".")))
    if not labels or any(not label for label in labels):
        raise ValueError(f"malformed PSL rule: {line!r}")
    return PslRule(labels=labels, is_exception=is_exception, is_private=is_private)


class PublicSuffixList:
    """A compiled Public Suffix List.

    Args:
        icann_rules: rules from the ICANN section.
        private_rules: rules from the PRIVATE section (hosting platforms).
        include_private: whether PRIVATE rules participate in matching.
          The paper's normalization follows the full list, so this defaults
          to True.
    """

    def __init__(
        self,
        icann_rules: Iterable[str] = ICANN_RULES,
        private_rules: Iterable[str] = PRIVATE_RULES,
        include_private: bool = True,
    ) -> None:
        self._root = _Node()
        self._rule_count = 0
        for line in icann_rules:
            self._insert(_parse_rule(line, is_private=False))
        if include_private:
            for line in private_rules:
                self._insert(_parse_rule(line, is_private=True))

    def _insert(self, rule: PslRule) -> None:
        node = self._root
        for label in rule.labels:
            node = node.children.setdefault(label, _Node())
        node.rule = rule
        self._rule_count += 1

    def __len__(self) -> int:
        return self._rule_count

    def _matching_rules(self, labels: Sequence[str]) -> List[PslRule]:
        """All rules matching ``labels`` (reversed, TLD-first order)."""
        matches: List[PslRule] = []
        frontier = [self._root]
        for label in labels:
            next_frontier: List[_Node] = []
            for node in frontier:
                exact = node.children.get(label)
                if exact is not None:
                    next_frontier.append(exact)
                wild = node.children.get("*")
                if wild is not None:
                    next_frontier.append(wild)
            for node in next_frontier:
                if node.rule is not None:
                    matches.append(node.rule)
            frontier = next_frontier
            if not frontier:
                break
        return matches

    def public_suffix(self, name: str) -> Optional[str]:
        """The public suffix of ``name``, or ``None`` for empty input.

        >>> default_psl().public_suffix("www.bbc.co.uk")
        'co.uk'
        >>> default_psl().public_suffix("www.ck")  # exception rule
        'ck'
        >>> default_psl().public_suffix("anything.ck")  # wildcard rule
        'anything.ck'
        """
        labels = split_labels(name)
        if not labels:
            return None
        reversed_labels = list(reversed(labels))
        matches = self._matching_rules(reversed_labels)
        exceptions = [rule for rule in matches if rule.is_exception]
        if exceptions:
            # An exception rule's public suffix drops its leftmost label.
            rule = max(exceptions, key=lambda r: r.match_length)
            suffix_len = rule.match_length - 1
        elif matches:
            rule = max(matches, key=lambda r: r.match_length)
            suffix_len = rule.match_length
        else:
            suffix_len = 1  # The prevailing "*" rule.
        suffix_len = min(suffix_len, len(labels))
        return ".".join(labels[len(labels) - suffix_len:])

    def registrable_domain(self, name: str) -> Optional[str]:
        """The registrable ("PSL+1") domain of ``name``.

        Returns ``None`` when ``name`` *is* a public suffix (e.g. ``com`` or
        ``co.uk``) — such names have no registrable domain, which matters for
        Umbrella entries like ``com`` that rank bare TLDs.

        >>> default_psl().registrable_domain("www.bbc.co.uk")
        'bbc.co.uk'
        >>> default_psl().registrable_domain("co.uk") is None
        True
        """
        labels = split_labels(name)
        if not labels:
            return None
        suffix = self.public_suffix(name)
        assert suffix is not None
        suffix_len = len(suffix.split("."))
        if len(labels) <= suffix_len:
            return None
        return ".".join(labels[len(labels) - suffix_len - 1:])

    def is_public_suffix(self, name: str) -> bool:
        """True when ``name`` itself is a public suffix."""
        labels = split_labels(name)
        if not labels:
            return False
        return self.public_suffix(name) == ".".join(labels)

    def deviates_from_registrable(self, name: str) -> bool:
        """True when a raw list entry is not already a registrable domain.

        This is the Table 2 statistic: an Umbrella FQDN like
        ``www.example.com`` deviates; ``example.com`` does not.  Entries that
        have no registrable domain at all (bare public suffixes) count as
        deviating.
        """
        labels = split_labels(name)
        if not labels:
            return True
        registrable = self.registrable_domain(name)
        return registrable != ".".join(labels)


_DEFAULT: Optional[PublicSuffixList] = None


def default_psl() -> PublicSuffixList:
    """The process-wide shared PSL compiled from the embedded snapshot."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = PublicSuffixList()
    return _DEFAULT
