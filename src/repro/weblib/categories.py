"""Website category taxonomy and per-category behavioural parameters.

Table 3 of the paper models the odds that each top list includes a website as
a function of the site's category (labelled by Cloudflare's Domain
Intelligence API).  The paper *observes* category biases; this module encodes
the *mechanisms* the paper proposes for them, so that the biases emerge from
simulation rather than being painted on:

* adult/gambling sites are browsed in private mode, where Alexa-style
  browser extensions are disabled (Section 6.4, citing Gao et al.);
* government/news sites attract disproportionately many backlinks, inflating
  Majestic's link-based rank;
* enterprise DNS deployments (Umbrella's user base) block adult, gambling,
  and abuse categories;
* parked and abuse domains are rarely hyperlinked from public pages or allow
  crawling, excluding them from Chrome telemetry's public-domain criterion.

The 22 categories below match the Bonferroni correction factor of 22 that
the paper applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["Category", "CATEGORIES", "category_by_name", "category_index"]


@dataclass(frozen=True)
class Category:
    """A website category and its behavioural parameters.

    Attributes:
        name: short label, as in Table 3.
        prevalence: approximate share of the site universe in this category.
        popularity_tilt: multiplier applied to a site's base popularity
          weight (news sites punch above their numbers; parked domains get
          almost no intentional visits).
        private_browsing_rate: fraction of visits made in a private window
          (extensions disabled -> invisible to Alexa's panel).
        backlink_propensity: relative rate at which other sites link here
          (drives Majestic).
        enterprise_blocked_rate: fraction of enterprise DNS deployments that
          block the category outright (suppresses Umbrella observations).
        robots_public_rate: probability the site is publicly hyperlinked and
          crawlable (Chrome telemetry excludes non-public domains).
        mobile_tilt: multiplier on the mobile share of the site's traffic
          relative to the global platform mix (>1 means mobile-heavy).
        dwell_seconds: mean time-on-page, feeding Chrome's time-on-site
          telemetry metric.
        work_affinity: how work-hours-shaped the category's traffic is
          (0 = weekend/evening leisure, 1 = strictly office hours); drives
          the weekly periodicity of Figure 3.
    """

    name: str
    prevalence: float
    popularity_tilt: float
    private_browsing_rate: float
    backlink_propensity: float
    enterprise_blocked_rate: float
    robots_public_rate: float
    mobile_tilt: float
    dwell_seconds: float
    work_affinity: float


CATEGORIES: Tuple[Category, ...] = (
    Category("government", 0.015, 1.1, 0.01, 6.0, 0.00, 0.99, 0.75, 95.0, 0.80),
    Category("news", 0.035, 2.2, 0.02, 4.5, 0.00, 0.99, 1.05, 140.0, 0.60),
    Category("education", 0.030, 1.0, 0.01, 3.0, 0.00, 0.98, 0.70, 180.0, 0.75),
    Category("science", 0.020, 0.9, 0.01, 2.5, 0.00, 0.98, 0.65, 160.0, 0.75),
    Category("community", 0.050, 1.4, 0.05, 1.2, 0.02, 0.95, 1.25, 220.0, 0.35),
    Category("business", 0.140, 1.0, 0.02, 1.0, 0.00, 0.96, 0.80, 75.0, 0.85),
    Category("gaming", 0.040, 1.3, 0.08, 0.9, 0.15, 0.94, 1.30, 310.0, 0.20),
    Category("kids", 0.010, 0.8, 0.01, 0.8, 0.01, 0.96, 1.20, 240.0, 0.35),
    Category("lifestyle", 0.060, 1.0, 0.04, 0.8, 0.01, 0.95, 1.20, 110.0, 0.35),
    Category("arts", 0.035, 0.9, 0.02, 1.1, 0.00, 0.96, 1.00, 130.0, 0.40),
    Category("health", 0.035, 1.0, 0.06, 0.9, 0.00, 0.96, 1.05, 120.0, 0.50),
    Category("blog", 0.090, 0.7, 0.03, 0.6, 0.01, 0.92, 1.00, 150.0, 0.45),
    Category("sports", 0.030, 1.3, 0.02, 1.0, 0.02, 0.96, 1.25, 170.0, 0.35),
    Category("travel", 0.030, 0.9, 0.02, 1.4, 0.01, 0.96, 0.95, 130.0, 0.45),
    Category("shopping", 0.080, 1.3, 0.04, 0.7, 0.01, 0.95, 1.15, 190.0, 0.45),
    Category("cars", 0.015, 0.8, 0.02, 0.7, 0.01, 0.95, 0.90, 110.0, 0.50),
    Category("technology", 0.070, 1.2, 0.02, 1.5, 0.00, 0.97, 0.70, 140.0, 0.80),
    Category("finance", 0.035, 1.1, 0.03, 1.0, 0.00, 0.96, 0.85, 100.0, 0.80),
    Category("adult", 0.045, 1.6, 0.40, 0.25, 0.92, 0.85, 1.35, 280.0, 0.15),
    Category("abuse", 0.020, 0.6, 0.25, 0.10, 0.85, 0.30, 1.00, 15.0, 0.50),
    Category("gambling", 0.020, 0.9, 0.32, 0.30, 0.88, 0.80, 1.15, 260.0, 0.25),
    Category("parked", 0.095, 0.30, 0.05, 0.05, 0.45, 0.15, 1.00, 8.0, 0.50),
)

assert abs(sum(c.prevalence for c in CATEGORIES) - 1.0) < 1e-9, "prevalences must sum to 1"

_BY_NAME: Dict[str, Category] = {c.name: c for c in CATEGORIES}
_INDEX: Dict[str, int] = {c.name: i for i, c in enumerate(CATEGORIES)}


def category_by_name(name: str) -> Category:
    """Look up a category by its Table 3 label.

    Raises:
        KeyError: for unknown labels.
    """
    return _BY_NAME[name]


def category_index(name: str) -> int:
    """Stable integer index of a category (used by the vectorized worldgen)."""
    return _INDEX[name]
