"""Web naming substrate: domains, the Public Suffix List, browsers, categories.

This package provides the vocabulary that every other subsystem speaks:

* :mod:`repro.weblib.domains` — parsing and manipulating DNS names and web
  origins (``https://www.example.co.uk`` and friends).
* :mod:`repro.weblib.psl` — a full implementation of the Public Suffix List
  matching algorithm (normal, wildcard, and exception rules) over an embedded
  snapshot of rules, used to normalize top lists to registrable domains as in
  Section 4.2 of the paper.
* :mod:`repro.weblib.useragents` — the browser/user-agent model behind the
  "top five browsers" filter of Section 3.1.
* :mod:`repro.weblib.categories` — the website category taxonomy used for the
  Table 3 inclusion-bias analysis.
"""

from repro.weblib.categories import Category, CATEGORIES, category_by_name
from repro.weblib.domains import (
    Origin,
    ParsedName,
    is_valid_hostname,
    parse_name,
    parse_origin,
    reverse_labels,
    split_labels,
)
from repro.weblib.psl import PublicSuffixList, default_psl
from repro.weblib.useragents import Browser, BROWSERS, TOP_FIVE_BROWSERS, UserAgent

__all__ = [
    "Browser",
    "BROWSERS",
    "CATEGORIES",
    "Category",
    "Origin",
    "ParsedName",
    "PublicSuffixList",
    "TOP_FIVE_BROWSERS",
    "UserAgent",
    "category_by_name",
    "default_psl",
    "is_valid_hostname",
    "parse_name",
    "parse_origin",
    "reverse_labels",
    "split_labels",
]
