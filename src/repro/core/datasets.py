"""Dataset I/O: read and write top lists in the formats research uses.

The published lists this paper studies circulate as rank CSVs — Tranco's
``rank,domain``, Umbrella's ``rank,fqdn``, CrUX's BigQuery-exported
``origin,rank_magnitude``.  This module writes our simulated lists in
those shapes and reads external files back for evaluation, so the library
slots into existing research pipelines.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.providers.base import RankedList
from repro.worldgen.world import World

__all__ = [
    "write_rank_csv",
    "read_rank_csv",
    "write_crux_csv",
    "read_crux_csv",
    "list_to_rows",
]

PathLike = Union[str, Path]


def list_to_rows(world: World, ranked: RankedList, limit: Optional[int] = None) -> List[Tuple[int, str]]:
    """Materialize a ranked list as ``(rank, name)`` rows."""
    strings = ranked.strings(world, limit=limit)
    return [(i + 1, name) for i, name in enumerate(strings)]


def write_rank_csv(
    world: World,
    ranked: RankedList,
    path: PathLike,
    limit: Optional[int] = None,
) -> int:
    """Write a list as a Tranco/Umbrella-style ``rank,name`` CSV.

    Returns:
        Number of rows written.
    """
    rows = list_to_rows(world, ranked, limit=limit)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        for rank, name in rows:
            writer.writerow([rank, name])
    return len(rows)


def read_rank_csv(path: PathLike) -> List[str]:
    """Read a ``rank,name`` CSV back as entries in rank order.

    Rows are re-sorted by their rank column, so files with shuffled rows
    load correctly.  Blank lines and malformed rows are skipped.

    Raises:
        FileNotFoundError: if the file does not exist.
    """
    entries: List[Tuple[int, str]] = []
    with open(path, newline="") as handle:
        for row in csv.reader(handle):
            if len(row) < 2:
                continue
            try:
                rank = int(row[0])
            except ValueError:
                continue
            entries.append((rank, row[1].strip()))
    entries.sort(key=lambda pair: pair[0])
    return [name for _rank, name in entries]


def write_crux_csv(
    world: World,
    ranked: RankedList,
    path: PathLike,
) -> int:
    """Write a bucketed list as a CrUX-style ``origin,rank`` CSV.

    The rank column holds the bucket's magnitude (1000, 10000, ...), as in
    the public CrUX BigQuery export — individual positions are withheld.

    Raises:
        ValueError: for lists without bucket bounds.
    """
    if ranked.bucket_bounds is None:
        raise ValueError("write_crux_csv needs a bucketed list")
    bounds = np.asarray(ranked.bucket_bounds)
    # Label each bucket by the paper's magnitude names scaled to powers of
    # ten for familiarity: 1000 * 10^i.
    labels = [1000 * (10 ** i) for i in range(len(bounds))]
    rows = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["origin", "rank"])
        start = 0
        for bound, label in zip(bounds, labels):
            for row_idx in ranked.name_rows[start:bound]:
                writer.writerow([world.names.strings[int(row_idx)], label])
                rows += 1
            start = int(bound)
    return rows


def read_crux_csv(path: PathLike) -> List[Tuple[str, int]]:
    """Read a CrUX-style CSV back as ``(origin, rank_magnitude)`` pairs,
    ordered by magnitude then file order (all CrUX permits)."""
    pairs: List[Tuple[str, int]] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is not None and header[:1] != ["origin"] and len(header) >= 2:
            # No header row: treat it as data.
            try:
                pairs.append((header[0].strip(), int(header[1])))
            except ValueError:
                pass
        for row in reader:
            if len(row) < 2:
                continue
            try:
                pairs.append((row[0].strip(), int(row[1])))
            except ValueError:
                continue
    pairs.sort(key=lambda pair: pair[1])
    return pairs
