"""Runnable reproductions of every table and figure.

Each ``run_*`` function executes one experiment over an
:class:`~repro.core.pipeline.ExperimentContext` and returns an
:class:`ExperimentResult` holding both structured data (for assertions and
EXPERIMENTS.md) and rendered text (the same rows/series the paper
reports).  The CLI and the benchmark suite are thin wrappers around these.

Experiments are registered declaratively: each runner carries an
:class:`ExperimentSpec` (id, title, tags, required artifacts, default
magnitudes) in the :data:`SPECS` registry, which the CLI, the parallel
runner, the golden harness, and ``repro bench`` all iterate as the single
source of truth.  The legacy :data:`EXPERIMENTS` dict still imports for
one release but emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cdn.filters import ALL_COMBINATIONS, FINAL_SEVEN
from repro.core import report
from repro.core.bias import country_bias, intra_chrome_consistency, platform_bias
from repro.core.buckets import bookend_consensus_buckets, movement_matrix
from repro.core.normalize import deviation_by_magnitude
from repro.core.pipeline import ExperimentContext
from repro.core.regression import category_inclusion_odds
from repro.core.similarity import (
    pairwise_jaccard,
    pairwise_spearman,
    spearman,
)
from repro.core.survey import SCHEITLE_USAGE_RATES, usage_statistics
from repro.core.temporal import TemporalAnalysis, daily_series
from repro.providers.registry import PROVIDER_ORDER
from repro.weblib.categories import CATEGORIES
from repro.worldgen.countries import TELEMETRY_COUNTRIES

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "SPECS",
    "EXPERIMENTS",
    "register",
    "experiment",
    "run_experiment",
]


@dataclass
class ExperimentResult:
    """One executed experiment.

    Attributes:
        name: experiment id (``fig1``, ``table3``...).
        title: human-readable title.
        data: structured results, keyed by what they are.
        text: rendered tables/heatmaps, ready to print.
    """

    name: str
    title: str
    data: Dict[str, object]
    text: str


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative registration record for one experiment.

    Attributes:
        id: stable experiment id (``fig1``, ``table3``, ``survey``...).
        title: human-readable title (what the CLI and manifests print).
        fn: the runner; takes an
          :class:`~repro.core.pipeline.ExperimentContext`, returns an
          :class:`ExperimentResult`.
        tags: free-form labels (``figure``, ``table``, ``context``...)
          for filtering in ``repro list``.
        required_artifacts: context artifacts the experiment consumes
          (names accepted by
          :meth:`~repro.core.pipeline.ExperimentContext.artifact`).  They
          are prefetched, in order, before ``fn`` runs, so stage spans in a
          trace attribute construction to the first experiment needing it.
        default_magnitudes: the paper magnitude labels the experiment
          reports at by default (documentation; empty = not magnitude
          parameterized).
    """

    id: str
    title: str
    fn: Callable[["ExperimentContext"], ExperimentResult]
    tags: Tuple[str, ...] = ()
    required_artifacts: Tuple[str, ...] = ("world",)
    default_magnitudes: Tuple[str, ...] = ()

    @property
    def summary(self) -> str:
        """First docstring line of the runner (for ``repro list``)."""
        doc = (self.fn.__doc__ or "").strip()
        return doc.splitlines()[0] if doc else self.title


#: The experiment registry, in paper presentation order.  CLI, parallel
#: runner, golden harness, and ``repro bench`` all iterate this.
SPECS: Dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add a spec to :data:`SPECS`.

    Raises:
        ValueError: when the id is already registered.
    """
    if spec.id in SPECS:
        raise ValueError(f"experiment {spec.id!r} already registered")
    SPECS[spec.id] = spec
    return spec


def experiment(
    id: str,
    title: str,
    *,
    tags: Sequence[str] = (),
    required_artifacts: Sequence[str] = ("world",),
    default_magnitudes: Sequence[str] = (),
) -> Callable[[Callable], Callable]:
    """Decorator form of :func:`register` for ``run_*`` functions."""

    def decorate(fn: Callable) -> Callable:
        register(
            ExperimentSpec(
                id=id,
                title=title,
                fn=fn,
                tags=tuple(tags),
                required_artifacts=tuple(required_artifacts),
                default_magnitudes=tuple(default_magnitudes),
            )
        )
        return fn

    return decorate


def _sample_days(ctx: ExperimentContext, count: int) -> List[int]:
    """Evenly spaced day sample across the window."""
    n_days = ctx.config.n_days
    count = min(count, n_days)
    return sorted({int(round(i * (n_days - 1) / max(1, count - 1))) for i in range(count)})


# ---------------------------------------------------------------------------
# Figure 1 / Figure 8: intra-Cloudflare metric consistency.


def _intra_cf(
    ctx: ExperimentContext, combos: Sequence[str], days: Sequence[int], depth: int
) -> Tuple[Dict[Tuple[str, str], float], Dict[Tuple[str, str], float]]:
    jj_acc: Dict[Tuple[str, str], List[float]] = {}
    rho_acc: Dict[Tuple[str, str], List[float]] = {}
    for day in days:
        lists = {combo: ctx.engine.ranking(day, combo)[:depth] for combo in combos}
        jj = pairwise_jaccard(lists)
        rho = pairwise_spearman(lists)
        for pair, value in jj.items():
            jj_acc.setdefault(pair, []).append(value)
        for pair, value in rho.items():
            rho_acc.setdefault(pair, []).append(value)
    jj_mean = {pair: float(np.mean(vals)) for pair, vals in jj_acc.items()}
    rho_mean = {pair: float(np.nanmean(vals)) for pair, vals in rho_acc.items()}
    return jj_mean, rho_mean


@experiment("fig1", "Intra-Cloudflare Metric Consistency",
            tags=("figure", "cdn"), required_artifacts=("engine",))
def run_fig1(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 1: consistency of the seven final Cloudflare metrics."""
    depth = max(50, ctx.engine.n_cf_sites // 5)
    days = _sample_days(ctx, 7)
    jj, rho = _intra_cf(ctx, FINAL_SEVEN, days, depth)
    off_diag = [v for (a, b), v in jj.items() if a != b]
    labels = list(FINAL_SEVEN)
    text = "\n\n".join(
        [
            report.format_heatmap(labels, labels, jj, title="(a) Jaccard Index"),
            report.format_heatmap(labels, labels, rho, title="(b) Spearman Correlation"),
        ]
    )
    return ExperimentResult(
        name="fig1",
        title="Intra-Cloudflare Metric Consistency",
        data={
            "jaccard": jj,
            "spearman": rho,
            "jaccard_band": (min(off_diag), max(off_diag)),
            "depth": depth,
            "days": days,
        },
        text=text,
    )


@experiment("fig8", "All 21 Intra-Cloudflare Popularity Metrics",
            tags=("figure", "cdn"), required_artifacts=("engine",))
def run_fig8(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 8: all 21 filter-aggregation combinations, single day."""
    depth = max(50, ctx.engine.n_cf_sites // 5)
    jj, rho = _intra_cf(ctx, ALL_COMBINATIONS, [0], depth)
    labels = list(ALL_COMBINATIONS)
    text = "\n\n".join(
        [
            report.format_heatmap(labels, labels, jj, title="(a) Jaccard Index (day 0)"),
            report.format_heatmap(labels, labels, rho, title="(b) Spearman Correlation (day 0)"),
        ]
    )
    return ExperimentResult(
        name="fig8",
        title="All 21 Intra-Cloudflare Popularity Metrics",
        data={"jaccard": jj, "spearman": rho, "depth": depth},
        text=text,
    )


# ---------------------------------------------------------------------------
# Table 1: Cloudflare coverage of top lists.


@experiment("table1", "Cloudflare Coverage of Top Lists",
            tags=("table",), required_artifacts=("providers", "evaluator"),
            default_magnitudes=("1K", "10K", "100K", "1M"))
def run_table1(ctx: ExperimentContext) -> ExperimentResult:
    """Table 1: percent of list entries served by Cloudflare."""
    rows = []
    coverage: Dict[str, Dict[str, float]] = {}
    for name in PROVIDER_ORDER:
        provider = ctx.providers[name]
        per_magnitude = {}
        row: List[object] = [name]
        for label, magnitude in zip(ctx.magnitude_labels, ctx.magnitudes):
            value = 100.0 * ctx.evaluator.coverage(provider, magnitude)
            per_magnitude[label] = value
            row.append(value)
        coverage[name] = per_magnitude
        rows.append(row)
    text = report.format_table(
        ["list"] + list(ctx.magnitude_labels),
        rows,
        title="Cloudflare Coverage of Top Lists (%)",
    )
    return ExperimentResult(
        name="table1",
        title="Cloudflare Coverage of Top Lists",
        data={"coverage": coverage},
        text=text,
    )


# ---------------------------------------------------------------------------
# Table 2: PSL deviation.


@experiment("table2", "PSL Deviation of Raw List Entries",
            tags=("table",), required_artifacts=("providers",),
            default_magnitudes=("1K", "10K", "100K", "1M"))
def run_table2(ctx: ExperimentContext) -> ExperimentResult:
    """Table 2: percent of raw entries deviating from the PSL domain."""
    rows = []
    deviation: Dict[str, Dict[str, float]] = {}
    mid_day = ctx.config.n_days // 2
    for name in PROVIDER_ORDER:
        ranked = ctx.providers[name].daily_list(mid_day)
        by_mag = deviation_by_magnitude(ctx.world, ranked, ctx.magnitudes)
        per_label = {
            label: 100.0 * by_mag[magnitude]
            for label, magnitude in zip(ctx.magnitude_labels, ctx.magnitudes)
        }
        deviation[name] = per_label
        rows.append([name] + [per_label[label] for label in ctx.magnitude_labels])
    text = report.format_table(
        ["list"] + list(ctx.magnitude_labels),
        rows,
        title="Percent of Domains Deviating from Public Suffix List",
    )
    return ExperimentResult(
        name="table2",
        title="PSL Deviation of Raw List Entries",
        data={"deviation": deviation},
        text=text,
    )


# ---------------------------------------------------------------------------
# Figure 2: top lists vs Cloudflare.


@experiment("fig2", "Correlation Between Top Lists and Cloudflare",
            tags=("figure",), required_artifacts=("providers", "evaluator"),
            default_magnitudes=("100K",))
def run_fig2(ctx: ExperimentContext, magnitude: Optional[int] = None) -> ExperimentResult:
    """Figure 2: every list against every final Cloudflare metric."""
    magnitude = magnitude if magnitude is not None else ctx.magnitudes[2]
    days = _sample_days(ctx, 7)
    matrix = ctx.evaluator.evaluate_matrix(
        ctx.providers, FINAL_SEVEN, magnitude, days=days
    )
    jj_cells = {
        (name, combo): matrix[name][combo].jaccard
        for name in PROVIDER_ORDER
        for combo in FINAL_SEVEN
    }
    rho_cells = {
        (name, combo): matrix[name][combo].spearman
        for name in PROVIDER_ORDER
        for combo in FINAL_SEVEN
    }
    # Metric agreement on the ordering of lists (the paper: rs = 1.0).
    orderings = []
    for combo in FINAL_SEVEN:
        scores = [matrix[name][combo].jaccard for name in PROVIDER_ORDER]
        orderings.append(np.argsort(np.argsort(scores)))
    agreement = []
    for i in range(len(orderings)):
        for j in range(i + 1, len(orderings)):
            agreement.append(spearman(orderings[i], orderings[j]).rho)

    text = "\n\n".join(
        [
            report.format_heatmap(
                list(PROVIDER_ORDER), list(FINAL_SEVEN), jj_cells,
                title=f"(a) Jaccard Index (magnitude={magnitude})",
            ),
            report.format_heatmap(
                list(PROVIDER_ORDER), list(FINAL_SEVEN), rho_cells,
                title="(b) Spearman Correlation",
            ),
            f"metric agreement on list ordering: mean rs = {np.mean(agreement):.3f}",
        ]
    )
    return ExperimentResult(
        name="fig2",
        title="Correlation Between Top Lists and Cloudflare",
        data={
            "matrix": matrix,
            "jaccard": jj_cells,
            "spearman": rho_cells,
            "ordering_agreement": float(np.mean(agreement)),
            "magnitude": magnitude,
            "days": days,
        },
        text=text,
    )


# ---------------------------------------------------------------------------
# Figure 3: temporal stability.


@experiment("fig3", "Popularity Metrics Over Time",
            tags=("figure", "temporal"),
            required_artifacts=("providers", "evaluator"),
            default_magnitudes=("1M",))
def run_fig3(ctx: ExperimentContext, combo: str = "all:requests") -> ExperimentResult:
    """Figure 3: daily correlation over the window at the 1M magnitude."""
    magnitude = ctx.magnitudes[3]
    series = {
        name: daily_series(
            ctx.evaluator, ctx.providers[name], combo, magnitude, ctx.config
        )
        for name in PROVIDER_ORDER
    }
    analysis = TemporalAnalysis(series=series)
    lines = ["Daily Jaccard (shade = value):"]
    for name in PROVIDER_ORDER:
        lines.append(report.format_series(name, list(series[name].jaccard)))
    lines.append("")
    lines.append("Daily Spearman:")
    for name in PROVIDER_ORDER:
        if not np.all(np.isnan(series[name].spearman)):
            lines.append(report.format_series(name, list(series[name].spearman)))
    lines.append("")
    lines.append(
        f"list-ordering stability across days: {analysis.ordering_stability():.3f}"
    )
    change_day = ctx.config.alexa_change_day
    jj_delta, rho_delta = analysis.trend_delta("alexa", change_day)
    lines.append(
        f"alexa accuracy change after day {change_day}: "
        f"jaccard {jj_delta:+.3f}, spearman {rho_delta:+.3f}"
    )
    return ExperimentResult(
        name="fig3",
        title="Popularity Metrics Over Time",
        data={
            "series": series,
            "analysis": analysis,
            "magnitude": magnitude,
            "umbrella_periodicity": analysis.periodicity_strength("umbrella"),
            "alexa_trend": (jj_delta, rho_delta),
        },
        text="\n".join(lines),
    )


# ---------------------------------------------------------------------------
# Figure 5 / Section 5.3: rank-magnitude movement.


@experiment("fig5", "Rank-Magnitude Movement vs Cloudflare",
            tags=("figure",), required_artifacts=("engine", "providers"),
            default_magnitudes=("1K", "10K", "100K", "1M"))
def run_fig5(
    ctx: ExperimentContext, providers: Sequence[str] = ("alexa", "crux")
) -> ExperimentResult:
    """Figure 5: movement between Cloudflare and list buckets."""
    day = ctx.config.n_days // 2
    bounds = ctx.magnitudes
    assignment, consensus = bookend_consensus_buckets(
        ctx.engine, day, bounds, ctx.magnitude_labels
    )
    matrices = {}
    stats: Dict[str, Dict[str, float]] = {}
    blocks = []
    for name in providers:
        normalized = ctx.normalized(name, day)
        matrix = movement_matrix(
            assignment, consensus, normalized, ctx.world.sites.cf_served
        )
        matrices[name] = matrix
        # The paper's headline stats target the 10K bucket (index 1) and
        # the 1K bucket (index 0).
        stats[name] = {
            "overranked_10k": matrix.overranked_fraction(1),
            "overranked_10k_2plus": matrix.overranked_fraction(1, min_gap=2),
            "overranked_1k": matrix.overranked_fraction(0),
            "overranked_1k_2plus": matrix.overranked_fraction(0, min_gap=2),
            "agreement": matrix.agreement_fraction(),
        }
        blocks.append(report.format_movement(matrix.labels, matrix.counts, name))
        blocks.append(
            f"{name}: top-10K overranked {100 * stats[name]['overranked_10k']:.1f}% "
            f"({100 * stats[name]['overranked_10k_2plus']:.1f}% by >= 2 magnitudes); "
            f"top-1K overranked {100 * stats[name]['overranked_1k']:.1f}%"
        )
    return ExperimentResult(
        name="fig5",
        title="Rank-Magnitude Movement vs Cloudflare",
        data={"matrices": matrices, "stats": stats, "consensus_size": len(consensus)},
        text="\n\n".join(blocks),
    )


# ---------------------------------------------------------------------------
# Figure 6: intra-Chrome consistency.


@experiment("fig6", "Intra-Chrome Metric Consistency",
            tags=("figure", "chrome"), required_artifacts=("telemetry",),
            default_magnitudes=("100K",))
def run_fig6(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 6: consistency of the three Chrome telemetry metrics."""
    magnitude = ctx.magnitudes[2]
    cells = intra_chrome_consistency(ctx.telemetry, magnitude)
    jj = {pair: cell.jaccard for pair, cell in cells.items()}
    rho = {pair: cell.spearman for pair, cell in cells.items()}
    labels = ["completed", "initiated", "time"]
    # Make symmetric for rendering.
    for a in labels:
        jj[(a, a)] = 1.0
        rho[(a, a)] = 1.0
    for (a, b) in list(cells):
        jj[(b, a)] = jj[(a, b)]
        rho[(b, a)] = rho[(a, b)]
    text = "\n\n".join(
        [
            report.format_heatmap(labels, labels, jj, title="(a) Jaccard Index"),
            report.format_heatmap(labels, labels, rho, title="(b) Spearman Correlation"),
        ]
    )
    return ExperimentResult(
        name="fig6",
        title="Intra-Chrome Metric Consistency",
        data={"cells": cells, "magnitude": magnitude},
        text=text,
    )


# ---------------------------------------------------------------------------
# Figures 4 and 7: platform and country bias.

#: Lists evaluated against Chrome data (CrUX excluded: same source).
_CHROME_COMPARABLE = tuple(n for n in PROVIDER_ORDER if n != "crux")


@experiment("fig4", "Top List Performance by Platform",
            tags=("figure", "chrome"),
            required_artifacts=("telemetry", "providers"),
            default_magnitudes=("100K",))
def run_fig4(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 4: list accuracy by client platform."""
    magnitude = ctx.magnitudes[2]
    normalized = {name: ctx.normalized_monthly(name) for name in _CHROME_COMPARABLE}
    cells = platform_bias(ctx.telemetry, normalized, magnitude)
    jj = {
        (name, platform): cells[name][platform].jaccard
        for name in _CHROME_COMPARABLE
        for platform in ("windows", "android")
    }
    rho = {
        (name, platform): cells[name][platform].spearman
        for name in _CHROME_COMPARABLE
        for platform in ("windows", "android")
    }
    text = "\n\n".join(
        [
            report.format_heatmap(
                list(_CHROME_COMPARABLE), ["windows", "android"], jj,
                title="(a) Jaccard by Platform", precision=3, hi=0.3,
            ),
            report.format_heatmap(
                list(_CHROME_COMPARABLE), ["windows", "android"], rho,
                title="(b) Spearman by Platform", precision=3, hi=0.5,
            ),
        ]
    )
    return ExperimentResult(
        name="fig4",
        title="Top List Performance by Platform",
        data={"cells": cells, "magnitude": magnitude},
        text=text,
    )


@experiment("fig7", "Top List Performance by Country",
            tags=("figure", "chrome"),
            required_artifacts=("telemetry", "providers"),
            default_magnitudes=("100K",))
def run_fig7(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 7: list accuracy by client country."""
    magnitude = ctx.magnitudes[2]
    normalized = {name: ctx.normalized_monthly(name) for name in _CHROME_COMPARABLE}
    cells = country_bias(ctx.telemetry, normalized, magnitude)
    countries = list(TELEMETRY_COUNTRIES)
    jj = {
        (name, code): cells[name][code].jaccard
        for name in _CHROME_COMPARABLE
        for code in countries
    }
    rho = {
        (name, code): cells[name][code].spearman
        for name in _CHROME_COMPARABLE
        for code in countries
    }
    text = "\n\n".join(
        [
            report.format_heatmap(
                list(_CHROME_COMPARABLE), countries, jj,
                title="(a) Jaccard by Country", precision=3, hi=0.3,
            ),
            report.format_heatmap(
                list(_CHROME_COMPARABLE), countries, rho,
                title="(b) Spearman by Country", precision=3, hi=0.5,
            ),
        ]
    )
    return ExperimentResult(
        name="fig7",
        title="Top List Performance by Country",
        data={"cells": cells, "magnitude": magnitude},
        text=text,
    )


# ---------------------------------------------------------------------------
# Table 3: category inclusion odds.


@experiment("table3", "Odds of Website Inclusion by Category",
            tags=("table",), required_artifacts=("engine", "providers"))
def run_table3(ctx: ExperimentContext) -> ExperimentResult:
    """Table 3: odds of website inclusion by category, per list."""
    day = 0
    # The paper restricts the regression to Cloudflare's top 100K because
    # inclusion rates collapse deeper; the scale-equivalent here is the
    # upper half of the Cloudflare-served universe.
    magnitude = max(ctx.magnitudes[2], ctx.engine.n_cf_sites // 2)
    universe = ctx.engine.top(day, "all:requests", magnitude)
    odds: Dict[str, Dict[str, object]] = {}
    for name in PROVIDER_ORDER:
        normalized = ctx.normalized(name, day)
        odds[name] = category_inclusion_odds(ctx.world, universe, normalized)

    category_names = [c.name for c in CATEGORIES]
    rows = []
    for cat in category_names:
        row: List[object] = [cat]
        for name in PROVIDER_ORDER:
            result = odds[name][cat]
            row.append(result.odds_ratio if result.significant else None)
        rows.append(row)
    text = report.format_table(
        ["category"] + list(PROVIDER_ORDER),
        rows,
        title=(
            "Odds of Website Inclusion by Category "
            "(blank = not significant at p<0.01, Bonferroni 22)"
        ),
    )
    return ExperimentResult(
        name="table3",
        title="Odds of Website Inclusion by Category",
        data={"odds": odds, "universe_size": len(universe), "magnitude": magnitude},
        text=text,
    )


# ---------------------------------------------------------------------------
# Section 2 survey.


@experiment("survey", "Top-List Usage in Research Papers (Section 2)",
            tags=("context",), required_artifacts=())
def run_survey(ctx: ExperimentContext) -> ExperimentResult:
    """Section 2: how research papers use top lists."""
    stats = usage_statistics()
    lines = [
        f"papers using top lists: {stats.papers}",
        f"set-only usage: {stats.set_only} ({100 * stats.set_only_fraction:.0f}%)",
        f"rank usage: {stats.rank_using} ({100 * stats.rank_using_fraction:.0f}%)",
        f"both: {stats.both} ({100 * stats.both_fraction:.0f}%)",
        "",
        "Scheitle et al. venue-class usage rates:",
    ]
    for venue_class, rate in SCHEITLE_USAGE_RATES.items():
        lines.append(f"  {venue_class}: {100 * rate:.0f}%")
    return ExperimentResult(
        name="survey",
        title="Top-List Usage in Research Papers (Section 2)",
        data={"stats": stats},
        text="\n".join(lines),
    )


# ---------------------------------------------------------------------------
# Context experiments (prior-work claims the paper builds on).


@experiment("agreement", "Cross-List Agreement (Scheitle et al. context)",
            tags=("context",), required_artifacts=("providers",))
def run_agreement(ctx: ExperimentContext) -> ExperimentResult:
    """Section 2 context: pairwise agreement among the top lists."""
    from repro.core.agreement import pairwise_list_agreement

    depth = ctx.magnitudes[2]
    matrix = pairwise_list_agreement(ctx.world, ctx.providers, depth)
    text = "\n\n".join([
        report.format_heatmap(
            list(matrix.names), list(matrix.names), matrix.jaccard,
            title=f"(a) pairwise Jaccard at depth {depth}",
        ),
        report.format_heatmap(
            list(matrix.names), list(matrix.names), matrix.spearman,
            title="(b) pairwise Spearman (intersections)",
        ),
        f"mean off-diagonal Jaccard: {matrix.mean_offdiagonal_jaccard():.3f}",
    ])
    return ExperimentResult(
        name="agreement",
        title="Cross-List Agreement (Scheitle et al. context)",
        data={"matrix": matrix},
        text=text,
    )


@experiment("stability", "List Stability (Scheitle et al. context)",
            tags=("context",), required_artifacts=("providers",))
def run_stability(ctx: ExperimentContext) -> ExperimentResult:
    """Section 2 context: list stability and churn."""
    from repro.core.stability import stability_report

    depth = ctx.magnitudes[2]
    days = range(min(14, ctx.config.n_days))
    reports = {
        name: stability_report(ctx.world, ctx.providers[name], depth=depth, days=days)
        for name in PROVIDER_ORDER
    }
    rows = [
        [
            name,
            reports[name].mean_daily_churn,
            reports[name].self_jaccard_by_lag.get(1, float("nan")),
            reports[name].self_jaccard_by_lag.get(7, float("nan")),
            reports[name].rank_stability,
        ]
        for name in PROVIDER_ORDER
    ]
    text = report.format_table(
        ["list", "daily churn", "self-JJ lag1", "self-JJ lag7", "rank stability"],
        rows,
        title=f"List stability over {len(list(days))} days (top {depth})",
    )
    return ExperimentResult(
        name="stability",
        title="List Stability (Scheitle et al. context)",
        data={"reports": reports},
        text=text,
    )


# ---------------------------------------------------------------------------
# Registry access.


def run_experiment(name: str, ctx: ExperimentContext) -> ExperimentResult:
    """Run one experiment by id.

    The spec's ``required_artifacts`` are prefetched through the context's
    :meth:`~repro.core.pipeline.ExperimentContext.artifact` choke point
    first, so construction cost lands in deterministic order (and, under
    tracing, is attributed to the first experiment that needs each stage).

    Raises:
        KeyError: for unknown experiment ids.
    """
    spec = SPECS[name]
    for artifact_name in spec.required_artifacts:
        ctx.artifact(artifact_name)
    return spec.fn(ctx)


class _DeprecatedExperiments(Mapping):
    """Mapping view emulating the pre-spec ``EXPERIMENTS`` dict.

    Iterates the :data:`SPECS` registry and resolves ids to their runner
    callables; every access warns.  Scheduled for removal one release
    after the spec registry landed.
    """

    def _warn(self) -> None:
        warnings.warn(
            "repro.core.experiments.EXPERIMENTS is deprecated; "
            "use the SPECS registry (ExperimentSpec.fn) instead",
            DeprecationWarning,
            stacklevel=3,
        )

    def __getitem__(self, key: str) -> Callable[[ExperimentContext], ExperimentResult]:
        self._warn()
        return SPECS[key].fn

    def __iter__(self):
        self._warn()
        return iter(SPECS)

    def __len__(self) -> int:
        return len(SPECS)


#: Deprecated: the bare id -> callable mapping the registry replaced.
EXPERIMENTS: Mapping = _DeprecatedExperiments()
