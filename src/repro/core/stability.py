"""List stability and churn (the Section 2 context, quantified).

Scheitle et al. formalized *stability* as a key top-list property and
showed the commercial lists churn heavily day to day; Tranco's entire
pitch is restoring it.  The paper builds on that line of work, so the
reproduction includes the analysis: day-over-day churn, decaying
self-intersection over longer lags, and rank displacement.

All functions operate on a provider's daily lists over the simulated
window and fold names to sites first, so FQDN- and domain-granular lists
are measured comparably.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.normalize import normalize_list
from repro.core.similarity import jaccard_index, rank_correlation_of_lists
from repro.providers.base import TopListProvider
from repro.worldgen.world import World

__all__ = ["StabilityReport", "stability_report", "daily_churn"]


def _top_sites(world: World, provider: TopListProvider, day: int, depth: int) -> np.ndarray:
    normalized = normalize_list(world, provider.daily_list(day))
    return normalized.sites[:depth]


def daily_churn(
    world: World,
    provider: TopListProvider,
    day: int,
    depth: int = 1000,
) -> float:
    """Fraction of the top-``depth`` replaced since the previous day.

    Raises:
        ValueError: for day 0 (no previous day exists).
    """
    if day < 1:
        raise ValueError("churn needs a previous day")
    today = set(_top_sites(world, provider, day, depth).tolist())
    yesterday = set(_top_sites(world, provider, day - 1, depth).tolist())
    if not today:
        return 0.0
    return len(today - yesterday) / len(today)


@dataclass
class StabilityReport:
    """Stability statistics for one provider over the window.

    Attributes:
        provider: list name.
        depth: list depth analysed.
        mean_daily_churn: average day-over-day replacement fraction.
        self_jaccard_by_lag: mean Jaccard between lists ``lag`` days apart.
        rank_stability: mean Spearman between consecutive days' rankings.
    """

    provider: str
    depth: int
    mean_daily_churn: float
    self_jaccard_by_lag: Dict[int, float]
    rank_stability: float


def stability_report(
    world: World,
    provider: TopListProvider,
    depth: int = 1000,
    lags: Sequence[int] = (1, 7),
    days: Optional[Sequence[int]] = None,
) -> StabilityReport:
    """Compute churn, lagged self-similarity, and rank stability.

    Args:
        world: the shared world.
        provider: list to analyse.
        depth: top-slice size.
        lags: day offsets for the self-Jaccard curve.
        days: days to include (default: the whole window).
    """
    day_list = list(days) if days is not None else list(range(world.config.n_days))
    slices: Dict[int, np.ndarray] = {
        day: _top_sites(world, provider, day, depth) for day in day_list
    }

    churn_values: List[float] = []
    rho_values: List[float] = []
    for prev, cur in zip(day_list, day_list[1:]):
        today = set(slices[cur].tolist())
        yesterday = set(slices[prev].tolist())
        if today:
            churn_values.append(len(today - yesterday) / len(today))
        rho = rank_correlation_of_lists(slices[prev], slices[cur]).rho
        if not np.isnan(rho):
            rho_values.append(rho)

    jaccard_by_lag: Dict[int, float] = {}
    for lag in lags:
        pairs = [
            jaccard_index(slices[a], slices[b])
            for a, b in zip(day_list, day_list[lag:])
        ]
        if pairs:
            jaccard_by_lag[lag] = float(np.mean(pairs))

    return StabilityReport(
        provider=provider.name,
        depth=depth,
        mean_daily_churn=float(np.mean(churn_values)) if churn_values else 0.0,
        self_jaccard_by_lag=jaccard_by_lag,
        rank_stability=float(np.mean(rho_values)) if rho_values else float("nan"),
    )
