"""List-format normalization (Section 4.2).

Top lists rank different objects: registrable domains, FQDNs (Umbrella),
and origins (CrUX).  To compare them fairly the paper groups every entry by
its PSL-defined registrable domain and keeps the *smallest* (best) rank per
domain.  This module implements that normalization two ways:

* a fast path over the world's name table (entries already know their
  site), used by every bench; and
* a string path through the real PSL matcher, used to normalize arbitrary
  external lists and to validate the fast path in tests.

It also computes Table 2's statistic: the fraction of raw entries that are
not already registrable domains (origins are first reduced to their host).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.providers.base import RankedList
from repro.weblib.domains import is_valid_hostname, parse_origin
from repro.weblib.psl import PublicSuffixList, default_psl
from repro.worldgen.world import World

__all__ = [
    "NormalizedList",
    "normalize_list",
    "normalize_strings",
    "psl_deviation_fraction",
    "deviation_by_magnitude",
]


@dataclass
class NormalizedList:
    """A top list folded to unique registrable-domain sites.

    Attributes:
        provider: source provider name.
        day: source day (None for monthly lists).
        sites: site indices ordered by best original rank (best first).
        ranks: the 1-based best original rank of each site.
        bucket_bounds: for bucketed sources, cumulative *original-entry*
          bucket sizes; used to select magnitude prefixes by original rank.
        raw_length: the raw list's entry count before folding.
    """

    provider: str
    day: Optional[int]
    sites: np.ndarray
    ranks: np.ndarray
    bucket_bounds: Optional[np.ndarray]
    raw_length: int

    def __len__(self) -> int:
        return len(self.sites)

    @property
    def is_bucketed(self) -> bool:
        """Whether the source published rank magnitudes, not exact ranks."""
        return self.bucket_bounds is not None

    def top_sites(self, magnitude: int) -> np.ndarray:
        """Sites whose best raw entry ranked within the top ``magnitude``.

        This is how a researcher takes "the top 10K" from a normalized
        list; for bucketed lists it selects whole buckets, which is all
        CrUX permits.
        """
        cutoff = int(np.searchsorted(self.ranks, magnitude, side="right"))
        return self.sites[:cutoff]


def normalize_list(world: World, ranked: RankedList, fold: bool = True) -> NormalizedList:
    """Normalize a provider list via the name table (fast path).

    Entries owned by no site (infrastructure DNS names) are dropped —
    they have no website to compare.  The first (best-ranked) entry of
    each site wins, implementing the paper's min-rank grouping.

    Args:
        world: the shared world.
        ranked: the provider's published list.
        fold: when False, skip the PSL folding: only entries whose string
          already *is* a registrable domain keep their site.  This is the
          "without normalization" alternative the paper calls "strictly
          worse" (Section 4.2), kept for the ablation bench.
    """
    sites = world.names.site[ranked.name_rows].copy()
    ranks = np.arange(1, len(sites) + 1, dtype=np.int64)
    if not fold:
        # An unfolded pipeline only matches entries whose literal string
        # already is the registrable domain; FQDNs like ``www.x.com`` and
        # origins match nothing (apex entries such as ``x.com`` still do).
        strings = world.names.strings
        site_names = world.sites.names
        for i, row in enumerate(ranked.name_rows):
            site = sites[i]
            if site >= 0 and strings[int(row)] != site_names[site]:
                sites[i] = -1
    owned = sites >= 0
    sites = sites[owned]
    ranks = ranks[owned]

    # Stable first-occurrence dedup: np.unique returns the first index of
    # each value under stable ordering of the input.
    _, first_idx = np.unique(sites, return_index=True)
    first_idx.sort()
    return NormalizedList(
        provider=ranked.provider,
        day=ranked.day,
        sites=sites[first_idx],
        ranks=ranks[first_idx],
        bucket_bounds=(
            ranked.bucket_bounds.copy() if ranked.bucket_bounds is not None else None
        ),
        raw_length=len(ranked.name_rows),
    )


def normalize_strings(
    entries: Sequence[str], psl: Optional[PublicSuffixList] = None
) -> Tuple[List[str], List[int]]:
    """Normalize arbitrary textual list entries to registrable domains.

    Args:
        entries: raw entries in rank order — domains, FQDNs, or origins.
        psl: PSL to use (defaults to the embedded snapshot).

    Returns:
        ``(domains, ranks)``: unique registrable domains in best-rank
        order with their 1-based best ranks.  Entries with no registrable
        domain (bare public suffixes, malformed names) are dropped.
    """
    psl = psl if psl is not None else default_psl()
    best: Dict[str, int] = {}
    for position, entry in enumerate(entries, start=1):
        host = _entry_host(entry)
        if host is None:
            continue
        try:
            domain = psl.registrable_domain(host)
        except ValueError:
            continue
        if domain is None:
            continue
        if domain not in best:
            best[domain] = position
    ordered = sorted(best.items(), key=lambda item: item[1])
    return [d for d, _ in ordered], [r for _, r in ordered]


def _entry_host(entry: str) -> Optional[str]:
    """Reduce a raw list entry to a hostname (origins lose their scheme).

    Syntactically invalid hostnames return None and are dropped by the
    callers, as the paper's pipeline would discard unprobeable entries.
    """
    entry = entry.strip().lower()
    if not entry:
        return None
    if any(ord(c) > 127 for c in entry):
        # Real lists carry IDN entries; fold them to ACE form first.
        from repro.weblib.idna import IdnaError, to_ascii

        try:
            entry = to_ascii(entry)
        except IdnaError:
            return None
    if "://" in entry:
        try:
            return parse_origin(entry).host
        except ValueError:
            return None
    if not is_valid_hostname(entry):
        return None
    return entry


def psl_deviation_fraction(
    entries: Sequence[str], psl: Optional[PublicSuffixList] = None
) -> float:
    """Fraction of raw entries that are not already registrable domains.

    Origins are reduced to their host first, so ``https://example.com``
    does not deviate but ``https://www.example.com`` does — matching how
    Table 2 treats CrUX.

    Returns 0.0 for an empty input.
    """
    psl = psl if psl is not None else default_psl()
    if not entries:
        return 0.0
    deviating = 0
    for entry in entries:
        host = _entry_host(entry)
        if host is None:
            deviating += 1
            continue
        try:
            if psl.deviates_from_registrable(host):
                deviating += 1
        except ValueError:
            deviating += 1
    return deviating / len(entries)


def deviation_by_magnitude(
    world: World,
    ranked: RankedList,
    magnitudes: Sequence[int],
    psl: Optional[PublicSuffixList] = None,
) -> Dict[int, float]:
    """Table 2: PSL deviation of a list's raw entries at each magnitude."""
    out: Dict[int, float] = {}
    strings = ranked.strings(world)
    for magnitude in magnitudes:
        out[magnitude] = psl_deviation_fraction(strings[:magnitude], psl=psl)
    return out
