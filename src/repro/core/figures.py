"""SVG rendering of the paper's figures.

The benches print text artifacts; this module renders the same data as
standalone SVG files — heatmaps (Figures 1, 2, 4, 6, 7, 8), daily series
(Figure 3), and rank-magnitude movement flows (Figure 5) — using only the
standard library, so the repository stays free of plotting dependencies.

All renderers return the SVG as a string; ``save_svg`` writes it with a
correct XML declaration.  Colors follow a single blue ramp for values in
[0, 1] and a red accent for negative values, readable on white.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["render_heatmap_svg", "render_series_svg", "render_movement_svg", "save_svg"]

PathLike = Union[str, Path]

_FONT = 'font-family="Menlo, Consolas, monospace"'


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _cell_color(value: float, lo: float, hi: float) -> str:
    """Blue ramp for the value range; light gray for missing."""
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "#eeeeee"
    span = hi - lo if hi > lo else 1.0
    t = min(1.0, max(0.0, (value - lo) / span))
    # White (t=0) to a deep blue (t=1).
    r = int(255 - t * 205)
    g = int(255 - t * 165)
    b = int(255 - t * 90)
    return f"#{r:02x}{g:02x}{b:02x}"


def _text_color(value: float, lo: float, hi: float) -> str:
    span = hi - lo if hi > lo else 1.0
    t = min(1.0, max(0.0, ((value if value == value else lo) - lo) / span))
    return "#ffffff" if t > 0.62 else "#1a1a1a"


def render_heatmap_svg(
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    values: Mapping[Tuple[str, str], float],
    title: str = "",
    lo: float = 0.0,
    hi: float = 1.0,
    cell: int = 52,
    precision: int = 2,
) -> str:
    """Render a labelled heatmap as an SVG string."""
    label_w = 10 + 8 * max((len(r) for r in row_labels), default=4)
    header_h = 14 + 7 * max((len(c) for c in col_labels), default=4)
    title_h = 28 if title else 8
    width = label_w + cell * len(col_labels) + 10
    height = title_h + header_h + cell * len(row_labels) + 10

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="#ffffff"/>',
    ]
    if title:
        parts.append(
            f'<text x="8" y="18" {_FONT} font-size="13" font-weight="bold" '
            f'fill="#1a1a1a">{_escape(title)}</text>'
        )
    # Column labels, rotated.
    for j, col in enumerate(col_labels):
        x = label_w + j * cell + cell // 2
        y = title_h + header_h - 6
        parts.append(
            f'<text x="{x}" y="{y}" {_FONT} font-size="10" fill="#333333" '
            f'transform="rotate(-35 {x} {y})">{_escape(col)}</text>'
        )
    # Cells and row labels.
    for i, row in enumerate(row_labels):
        y = title_h + header_h + i * cell
        parts.append(
            f'<text x="6" y="{y + cell // 2 + 4}" {_FONT} font-size="11" '
            f'fill="#333333">{_escape(row)}</text>'
        )
        for j, col in enumerate(col_labels):
            x = label_w + j * cell
            value = values.get((row, col))
            fill = _cell_color(value, lo, hi)
            parts.append(
                f'<rect x="{x}" y="{y}" width="{cell - 2}" height="{cell - 2}" '
                f'fill="{fill}" stroke="#ffffff"/>'
            )
            if value is not None and value == value:
                parts.append(
                    f'<text x="{x + (cell - 2) // 2}" y="{y + cell // 2 + 3}" '
                    f'{_FONT} font-size="10" text-anchor="middle" '
                    f'fill="{_text_color(value, lo, hi)}">{value:.{precision}f}</text>'
                )
    parts.append("</svg>")
    return "\n".join(parts)


def render_series_svg(
    series: Dict[str, Sequence[float]],
    title: str = "",
    width: int = 640,
    height: int = 300,
    weekend_days: Optional[Sequence[int]] = None,
) -> str:
    """Render named daily series as a multi-line chart (Figure 3 style)."""
    palette = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
               "#8c564b", "#17becf")
    margin_l, margin_r, margin_t, margin_b = 48, 120, 30, 24
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b

    finite = [v for values in series.values() for v in values if v == v]
    lo = min(finite) if finite else 0.0
    hi = max(finite) if finite else 1.0
    if hi <= lo:
        hi = lo + 1.0
    n_days = max((len(v) for v in series.values()), default=1)

    def x_of(day: int) -> float:
        return margin_l + plot_w * day / max(1, n_days - 1)

    def y_of(value: float) -> float:
        return margin_t + plot_h * (1 - (value - lo) / (hi - lo))

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="#ffffff"/>',
    ]
    if title:
        parts.append(
            f'<text x="8" y="18" {_FONT} font-size="13" font-weight="bold" '
            f'fill="#1a1a1a">{_escape(title)}</text>'
        )
    # Weekend shading.
    for day in weekend_days or ():
        if 0 <= day < n_days:
            x0 = x_of(max(0, day - 0.5)) if day > 0 else margin_l
            x1 = x_of(min(n_days - 1, day + 0.5))
            parts.append(
                f'<rect x="{x0:.1f}" y="{margin_t}" width="{max(1.0, x1 - x0):.1f}" '
                f'height="{plot_h}" fill="#f2f2f2"/>'
            )
    # Axes.
    parts.append(
        f'<line x1="{margin_l}" y1="{margin_t + plot_h}" x2="{margin_l + plot_w}" '
        f'y2="{margin_t + plot_h}" stroke="#999999"/>'
    )
    parts.append(
        f'<line x1="{margin_l}" y1="{margin_t}" x2="{margin_l}" '
        f'y2="{margin_t + plot_h}" stroke="#999999"/>'
    )
    for frac in (0.0, 0.5, 1.0):
        value = lo + frac * (hi - lo)
        y = y_of(value)
        parts.append(
            f'<text x="{margin_l - 6}" y="{y + 4:.1f}" {_FONT} font-size="9" '
            f'text-anchor="end" fill="#666666">{value:.2f}</text>'
        )
    # Lines and legend.
    for idx, (name, values) in enumerate(series.items()):
        color = palette[idx % len(palette)]
        points = " ".join(
            f"{x_of(day):.1f},{y_of(v):.1f}"
            for day, v in enumerate(values)
            if v == v
        )
        if points:
            parts.append(
                f'<polyline points="{points}" fill="none" stroke="{color}" '
                f'stroke-width="1.6"/>'
            )
        legend_y = margin_t + 14 * idx + 6
        parts.append(
            f'<rect x="{width - margin_r + 8}" y="{legend_y - 8}" width="10" '
            f'height="10" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{width - margin_r + 22}" y="{legend_y + 1}" {_FONT} '
            f'font-size="10" fill="#333333">{_escape(name)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def render_movement_svg(
    labels: Sequence[str],
    counts: np.ndarray,
    provider: str,
    width: int = 560,
    height: int = 360,
) -> str:
    """Render a Figure 5 movement matrix as a two-column flow diagram.

    Left column: Cloudflare buckets; right column: the list's buckets
    (plus "absent").  Link width is log-scaled; same-bucket flows are
    gray, off-by-one yellow, worse mismatches red — the paper's palette.
    """
    n = len(labels)
    left_labels = list(labels)
    right_labels = list(labels) + ["absent"]
    margin = 60
    col_gap = width - 2 * margin
    row_h_left = (height - 70) / max(1, n)
    row_h_right = (height - 70) / max(1, n + 1)

    def left_y(i: int) -> float:
        return 50 + row_h_left * (i + 0.5)

    def right_y(j: int) -> float:
        return 50 + row_h_right * (j + 0.5)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="#ffffff"/>',
        f'<text x="8" y="18" {_FONT} font-size="13" font-weight="bold" '
        f'fill="#1a1a1a">Cloudflare buckets &#8594; {_escape(provider)} buckets</text>',
    ]
    max_count = max(1.0, float(counts[:n, : n + 1].max()))
    for i in range(n):
        for j in range(n + 1):
            count = float(counts[i, j])
            if count <= 0:
                continue
            gap = abs(j - i) if j < n else n - i
            color = "#b0b0b0" if gap == 0 else ("#e0a818" if gap == 1 else "#c0392b")
            stroke = 1.0 + 5.0 * math.log1p(count) / math.log1p(max_count)
            x0, y0 = margin, left_y(i)
            x1, y1 = margin + col_gap, right_y(j)
            mid = (x0 + x1) / 2
            parts.append(
                f'<path d="M {x0} {y0:.1f} C {mid} {y0:.1f} {mid} {y1:.1f} '
                f'{x1} {y1:.1f}" fill="none" stroke="{color}" '
                f'stroke-width="{stroke:.1f}" stroke-opacity="0.7"/>'
            )
    for i, label in enumerate(left_labels):
        parts.append(
            f'<text x="{margin - 6}" y="{left_y(i) + 4:.1f}" {_FONT} font-size="11" '
            f'text-anchor="end" fill="#333333">{_escape(label)}</text>'
        )
    for j, label in enumerate(right_labels):
        parts.append(
            f'<text x="{margin + col_gap + 6}" y="{right_y(j) + 4:.1f}" {_FONT} '
            f'font-size="11" fill="#333333">{_escape(label)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(svg: str, path: PathLike) -> Path:
    """Write an SVG string to disk with an XML declaration."""
    path = Path(path)
    path.write_text('<?xml version="1.0" encoding="UTF-8"?>\n' + svg)
    return path
