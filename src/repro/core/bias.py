"""Platform and country bias analysis against Chrome telemetry (Section 6).

The paper compares top lists with per-(country, platform) Chrome popularity
rankings — data Chrome provided privately — to ask where list error comes
from.  Correlations are computed per (country, platform) pair and averaged
over the other axis (Figures 4 and 7); CrUX itself is excluded since it is
derived from the same telemetry.

Also implements Figure 6, the internal consistency of Chrome's three client
metrics, computed the same pairwise-then-average way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.normalize import NormalizedList
from repro.core.similarity import jaccard_index, rank_correlation_of_lists
from repro.telemetry.chrome import TELEMETRY_METRICS, ChromeTelemetry
from repro.worldgen.countries import COUNTRIES, TELEMETRY_COUNTRIES, country_index

__all__ = [
    "BiasCell",
    "compare_list_to_chrome",
    "platform_bias",
    "country_bias",
    "intra_chrome_consistency",
]


@dataclass(frozen=True)
class BiasCell:
    """One averaged (Jaccard, Spearman) comparison cell."""

    jaccard: float
    spearman: float


def _telemetry_country_indices(countries: Optional[Iterable[str]]) -> List[int]:
    codes = tuple(countries) if countries is not None else TELEMETRY_COUNTRIES
    return [country_index(code) for code in codes]


def compare_list_to_chrome(
    telemetry: ChromeTelemetry,
    normalized: NormalizedList,
    metric: str,
    country: int,
    platform: int,
    magnitude: int,
) -> Tuple[float, float]:
    """Compare one list against one Chrome (country, platform) ranking.

    Both sides are truncated to ``magnitude`` (the Chrome side also ends
    where its privacy threshold cuts off).  Returns ``(jaccard,
    spearman)``; Spearman is nan for intersections below 2.
    """
    chrome_ranking = telemetry.ranking(metric, country, platform)[:magnitude]
    list_side = normalized.top_sites(magnitude)
    jj = jaccard_index(list_side, chrome_ranking)
    rho = rank_correlation_of_lists(list_side, chrome_ranking).rho
    return jj, rho


def platform_bias(
    telemetry: ChromeTelemetry,
    normalized_lists: Dict[str, NormalizedList],
    magnitude: int,
    metric: str = "completed",
    countries: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, BiasCell]]:
    """Figure 4: per-platform accuracy, averaged across countries.

    Returns ``{provider: {"windows"|"android": BiasCell}}``.
    """
    country_ids = _telemetry_country_indices(countries)
    out: Dict[str, Dict[str, BiasCell]] = {}
    for name, normalized in normalized_lists.items():
        cells: Dict[str, BiasCell] = {}
        for platform, label in enumerate(("windows", "android")):
            jj_values = []
            rho_values = []
            for country in country_ids:
                jj, rho = compare_list_to_chrome(
                    telemetry, normalized, metric, country, platform, magnitude
                )
                jj_values.append(jj)
                if not np.isnan(rho):
                    rho_values.append(rho)
            cells[label] = BiasCell(
                jaccard=float(np.mean(jj_values)),
                spearman=float(np.mean(rho_values)) if rho_values else float("nan"),
            )
        out[name] = cells
    return out


def country_bias(
    telemetry: ChromeTelemetry,
    normalized_lists: Dict[str, NormalizedList],
    magnitude: int,
    metric: str = "completed",
    countries: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, BiasCell]]:
    """Figure 7: per-country accuracy, averaged across platforms.

    Returns ``{provider: {country_code: BiasCell}}``.
    """
    country_ids = _telemetry_country_indices(countries)
    out: Dict[str, Dict[str, BiasCell]] = {}
    for name, normalized in normalized_lists.items():
        cells: Dict[str, BiasCell] = {}
        for country in country_ids:
            jj_values = []
            rho_values = []
            for platform in (0, 1):
                jj, rho = compare_list_to_chrome(
                    telemetry, normalized, metric, country, platform, magnitude
                )
                jj_values.append(jj)
                if not np.isnan(rho):
                    rho_values.append(rho)
            cells[COUNTRIES[country].code] = BiasCell(
                jaccard=float(np.mean(jj_values)),
                spearman=float(np.mean(rho_values)) if rho_values else float("nan"),
            )
        out[name] = cells
    return out


def intra_chrome_consistency(
    telemetry: ChromeTelemetry,
    magnitude: int,
    countries: Optional[Sequence[str]] = None,
) -> Dict[Tuple[str, str], BiasCell]:
    """Figure 6: pairwise consistency of the three Chrome metrics.

    For every (country, platform) pair, rank sites under each metric,
    compare metric pairs at ``magnitude``, and average cells across pairs.
    """
    country_ids = _telemetry_country_indices(countries)
    jj_acc: Dict[Tuple[str, str], List[float]] = {}
    rho_acc: Dict[Tuple[str, str], List[float]] = {}
    for country in country_ids:
        for platform in (0, 1):
            rankings = {
                metric: telemetry.ranking(metric, country, platform)[:magnitude]
                for metric in TELEMETRY_METRICS
            }
            for i, a in enumerate(TELEMETRY_METRICS):
                for b in TELEMETRY_METRICS[i + 1 :]:
                    jj = jaccard_index(rankings[a], rankings[b])
                    rho = rank_correlation_of_lists(rankings[a], rankings[b]).rho
                    jj_acc.setdefault((a, b), []).append(jj)
                    if not np.isnan(rho):
                        rho_acc.setdefault((a, b), []).append(rho)
    out: Dict[Tuple[str, str], BiasCell] = {}
    for pair, values in jj_acc.items():
        rhos = rho_acc.get(pair, [])
        out[pair] = BiasCell(
            jaccard=float(np.mean(values)),
            spearman=float(np.mean(rhos)) if rhos else float("nan"),
        )
    return out
