"""Experiment orchestration: one shared context per configuration.

Every table/figure bench needs the same scaffolding — world, traffic,
providers, CDN engine, telemetry, evaluator — and at bench scale these are
worth building exactly once.  :func:`experiment_context` memoizes fully
constructed contexts per config, so a pytest-benchmark session touching all
twelve experiments builds the world a single time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.cdn.metrics import CdnMetricEngine
from repro.core.evaluation import CloudflareEvaluator
from repro.core.normalize import NormalizedList, normalize_list
from repro.providers.base import TopListProvider
from repro.providers.registry import build_providers
from repro.telemetry.chrome import ChromeTelemetry
from repro.traffic.fastpath import TrafficModel
from repro.worldgen.config import WorldConfig
from repro.worldgen.world import World, build_world

__all__ = ["ExperimentContext", "experiment_context", "BENCH_CONFIG"]

#: The default configuration every bench runs at.
BENCH_CONFIG = WorldConfig(n_sites=20_000, n_days=28)


@dataclass
class ExperimentContext:
    """Everything an experiment needs, built over one shared world."""

    config: WorldConfig
    world: World
    traffic: TrafficModel
    telemetry: ChromeTelemetry
    engine: CdnMetricEngine
    evaluator: CloudflareEvaluator
    providers: Dict[str, TopListProvider]

    _normalized_cache: Optional[Dict[Tuple[str, Optional[int]], NormalizedList]] = None

    def normalized(self, provider_name: str, day: int) -> NormalizedList:
        """A provider's normalized daily list (cached)."""
        provider = self.providers[provider_name]
        key = (provider_name, day if provider.publishes_daily else None)
        if self._normalized_cache is None:
            self._normalized_cache = {}
        cached = self._normalized_cache.get(key)
        if cached is None:
            cached = normalize_list(self.world, provider.daily_list(day))
            self._normalized_cache[key] = cached
        return cached

    def normalized_monthly(self, provider_name: str) -> NormalizedList:
        """A provider's normalized monthly list (cached)."""
        provider = self.providers[provider_name]
        key = (provider_name + "#monthly", None)
        if self._normalized_cache is None:
            self._normalized_cache = {}
        cached = self._normalized_cache.get(key)
        if cached is None:
            cached = normalize_list(self.world, provider.monthly_list())
            self._normalized_cache[key] = cached
        return cached

    @property
    def magnitudes(self) -> Tuple[int, ...]:
        """Concrete bucket sizes for this universe."""
        return self.config.bucket_sizes

    @property
    def magnitude_labels(self) -> Tuple[str, ...]:
        """The paper's magnitude labels (1K/10K/100K/1M)."""
        return self.config.bucket_labels


_CONTEXTS: Dict[WorldConfig, ExperimentContext] = {}


def experiment_context(config: Optional[WorldConfig] = None) -> ExperimentContext:
    """Build (or fetch the cached) experiment context for a config."""
    config = config if config is not None else BENCH_CONFIG
    cached = _CONTEXTS.get(config)
    if cached is not None:
        return cached

    world = build_world(config)
    traffic = TrafficModel(world)
    telemetry = ChromeTelemetry(world, traffic)
    providers = build_providers(world, traffic, telemetry)
    engine = CdnMetricEngine(world, traffic)
    evaluator = CloudflareEvaluator(world, engine)
    context = ExperimentContext(
        config=config,
        world=world,
        traffic=traffic,
        telemetry=telemetry,
        engine=engine,
        evaluator=evaluator,
        providers=providers,
    )
    _CONTEXTS[config] = context
    return context
