"""Experiment orchestration: one shared context per configuration.

Every table/figure bench needs the same scaffolding — world, traffic,
providers, CDN engine, telemetry, evaluator — and at bench scale these are
worth building exactly once.  :func:`experiment_context` memoizes fully
constructed contexts per config, so a pytest-benchmark session touching all
fourteen experiments builds the world a single time.

The context builds its components *lazily* through one choke point,
:meth:`ExperimentContext.artifact`: ``ctx.world``, ``ctx.engine`` etc. are
thin properties over ``ctx.artifact("world")``...  That single accessor is
where the observability layer (:mod:`repro.obs`) wraps construction in
trace spans, and where the artifact store hydrates components from disk
instead of rebuilding them — cold compute persists them; warm runs read
them back.

The in-process memo is bounded (:data:`MAX_CACHED_CONTEXTS`): a long-lived
server sweeping many configurations evicts least-recently-used contexts
instead of leaking whole worlds.  :func:`clear_contexts` empties it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro import obs
from repro.core.normalize import NormalizedList, normalize_list
from repro.worldgen.config import WorldConfig

__all__ = [
    "ARTIFACT_NAMES",
    "ExperimentContext",
    "experiment_context",
    "clear_contexts",
    "BENCH_CONFIG",
    "MAX_CACHED_CONTEXTS",
]

#: The default configuration every bench runs at.
BENCH_CONFIG = WorldConfig(n_sites=20_000, n_days=28)

#: Context components resolvable through :meth:`ExperimentContext.artifact`,
#: in dependency order.
ARTIFACT_NAMES: Tuple[str, ...] = (
    "world",
    "traffic",
    "telemetry",
    "engine",
    "evaluator",
    "providers",
)


class ExperimentContext:
    """Everything an experiment needs, built lazily over one shared world.

    Args:
        config: the world configuration.
        store: an optional :class:`~repro.store.ArtifactStore`; when given,
          the world hydrates from disk and traffic tensors, CDN metric
          counts, and provider lists stream through the store.

    Components are materialized on first access through
    :meth:`artifact` — the one choke point instrumentation and store
    hydration wrap — and cached for the context's lifetime.  The
    convenience properties (``world``, ``traffic``, ``telemetry``,
    ``engine``, ``evaluator``, ``providers``) all delegate to it.
    """

    def __init__(self, config: WorldConfig, store: Optional[object] = None) -> None:
        self.config = config
        self.store = store
        self._cfg_key: Optional[str] = None
        self._artifacts: Dict[str, object] = {}
        self._normalized_cache: Dict[Tuple[str, Optional[int]], NormalizedList] = {}

    # ------------------------------------------------------------------
    # The choke point.

    def artifact(self, name: str):
        """The named context component, built (and traced) on first access.

        Args:
            name: one of :data:`ARTIFACT_NAMES`.

        Raises:
            KeyError: for unknown artifact names.
        """
        value = self._artifacts.get(name)
        if value is None:
            if name not in ARTIFACT_NAMES:
                raise KeyError(
                    f"unknown context artifact {name!r}; "
                    f"choose from {', '.join(ARTIFACT_NAMES)}"
                )
            with obs.span(f"context/{name}"):
                value = self._build(name)
            self._artifacts[name] = value
        return value

    def _config_key(self) -> str:
        if self._cfg_key is None:
            from repro.store import config_key

            self._cfg_key = config_key(self.config)
        return self._cfg_key

    def _build(self, name: str):
        """Construct one component (store-backed when a store is attached).

        Imports stay local so the core pipeline has no hard dependency on
        the store package unless a store is actually used.
        """
        if name == "world":
            from repro.worldgen.world import build_world

            if self.store is None:
                return build_world(self.config)
            from repro.store import load_or_build_world

            return load_or_build_world(self.store, self._config_key(), self.config)
        if name == "traffic":
            from repro.traffic.fastpath import TrafficModel

            traffic = TrafficModel(self.world)
            if self.store is not None:
                from repro.store import attach_traffic_store

                attach_traffic_store(traffic, self.store, self._config_key())
            return traffic
        if name == "telemetry":
            from repro.telemetry.chrome import ChromeTelemetry

            return ChromeTelemetry(self.world, self.traffic)
        if name == "engine":
            from repro.cdn.metrics import CdnMetricEngine

            engine = CdnMetricEngine(self.world, self.traffic)
            if self.store is not None:
                from repro.store import attach_engine_store

                attach_engine_store(engine, self.store, self._config_key())
            return engine
        if name == "evaluator":
            from repro.core.evaluation import CloudflareEvaluator

            return CloudflareEvaluator(self.world, self.engine)
        # name == "providers" (artifact() already validated the name).
        from repro.providers.registry import build_providers

        providers = build_providers(self.world, self.traffic, self.telemetry)
        if self.store is not None:
            from repro.store import wrap_providers

            providers = wrap_providers(providers, self.store, self._config_key())
        return providers

    # ------------------------------------------------------------------
    # Component views.

    @property
    def world(self):
        """The simulated world (lazily built)."""
        return self.artifact("world")

    @property
    def traffic(self):
        """The shared per-day traffic model."""
        return self.artifact("traffic")

    @property
    def telemetry(self):
        """The Chrome telemetry vantage point."""
        return self.artifact("telemetry")

    @property
    def engine(self):
        """The Cloudflare metric engine."""
        return self.artifact("engine")

    @property
    def evaluator(self):
        """The list-vs-Cloudflare evaluator."""
        return self.artifact("evaluator")

    @property
    def providers(self):
        """All top-list providers, in registry order."""
        return self.artifact("providers")

    # ------------------------------------------------------------------
    # Normalized list cache.

    def normalized(self, provider_name: str, day: int) -> NormalizedList:
        """A provider's normalized daily list (cached)."""
        provider = self.providers[provider_name]
        key = (provider_name, day if provider.publishes_daily else None)
        cached = self._normalized_cache.get(key)
        if cached is None:
            with obs.span("normalize/list"):
                cached = normalize_list(self.world, provider.daily_list(day))
            self._normalized_cache[key] = cached
        return cached

    def normalized_monthly(self, provider_name: str) -> NormalizedList:
        """A provider's normalized monthly list (cached)."""
        provider = self.providers[provider_name]
        key = (provider_name + "#monthly", None)
        cached = self._normalized_cache.get(key)
        if cached is None:
            with obs.span("normalize/list"):
                cached = normalize_list(self.world, provider.monthly_list())
            self._normalized_cache[key] = cached
        return cached

    @property
    def magnitudes(self) -> Tuple[int, ...]:
        """Concrete bucket sizes for this universe."""
        return self.config.bucket_sizes

    @property
    def magnitude_labels(self) -> Tuple[str, ...]:
        """The paper's magnitude labels (1K/10K/100K/1M)."""
        return self.config.bucket_labels


#: Most contexts kept alive in-process; least recently used evicted first.
MAX_CACHED_CONTEXTS = 8

_CONTEXTS: "OrderedDict[Tuple[WorldConfig, Optional[str]], ExperimentContext]" = OrderedDict()


def clear_contexts() -> None:
    """Drop every memoized context (frees worlds in long-lived processes)."""
    _CONTEXTS.clear()


def experiment_context(
    *, config: Optional[WorldConfig] = None, store: Optional["object"] = None
) -> ExperimentContext:
    """Build (or fetch the cached) experiment context for a config.

    Keyword-only: :class:`~repro.worldgen.config.WorldConfig` is the sole
    configuration carrier (fold CLI arguments through
    :meth:`WorldConfig.from_args` first).

    Args:
        config: the world configuration (:data:`BENCH_CONFIG` by default).
        store: an optional :class:`~repro.store.ArtifactStore`.  When given,
          the world is hydrated from the store if present (persisted on a
          cold build), and traffic tensors, CDN metric counts, and provider
          lists flow through it lazily.
    """
    config = config if config is not None else BENCH_CONFIG
    memo_key = (config, None if store is None else str(getattr(store, "root", store)))
    cached = _CONTEXTS.get(memo_key)
    if cached is not None:
        _CONTEXTS.move_to_end(memo_key)
        return cached

    context = ExperimentContext(config, store=store)
    _CONTEXTS[memo_key] = context
    while len(_CONTEXTS) > MAX_CACHED_CONTEXTS:
        _CONTEXTS.popitem(last=False)
    return context
