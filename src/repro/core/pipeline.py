"""Experiment orchestration: one shared context per configuration.

Every table/figure bench needs the same scaffolding — world, traffic,
providers, CDN engine, telemetry, evaluator — and at bench scale these are
worth building exactly once.  :func:`experiment_context` memoizes fully
constructed contexts per config, so a pytest-benchmark session touching all
twelve experiments builds the world a single time.

With an :class:`~repro.store.ArtifactStore` attached, the context is also
durable across processes: the world is hydrated from disk instead of
rebuilt, and traffic/metric/provider artifacts stream lazily through the
store (cold compute persists them; warm runs read them back).

The in-process memo is bounded (:data:`MAX_CACHED_CONTEXTS`): a long-lived
server sweeping many configurations evicts least-recently-used contexts
instead of leaking whole worlds.  :func:`clear_contexts` empties it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.cdn.metrics import CdnMetricEngine
from repro.core.evaluation import CloudflareEvaluator
from repro.core.normalize import NormalizedList, normalize_list
from repro.providers.base import TopListProvider
from repro.providers.registry import build_providers
from repro.telemetry.chrome import ChromeTelemetry
from repro.traffic.fastpath import TrafficModel
from repro.worldgen.config import WorldConfig
from repro.worldgen.world import World, build_world

__all__ = [
    "ExperimentContext",
    "experiment_context",
    "clear_contexts",
    "BENCH_CONFIG",
    "MAX_CACHED_CONTEXTS",
]

#: The default configuration every bench runs at.
BENCH_CONFIG = WorldConfig(n_sites=20_000, n_days=28)


@dataclass
class ExperimentContext:
    """Everything an experiment needs, built over one shared world."""

    config: WorldConfig
    world: World
    traffic: TrafficModel
    telemetry: ChromeTelemetry
    engine: CdnMetricEngine
    evaluator: CloudflareEvaluator
    providers: Dict[str, TopListProvider]

    _normalized_cache: Optional[Dict[Tuple[str, Optional[int]], NormalizedList]] = None

    def normalized(self, provider_name: str, day: int) -> NormalizedList:
        """A provider's normalized daily list (cached)."""
        provider = self.providers[provider_name]
        key = (provider_name, day if provider.publishes_daily else None)
        if self._normalized_cache is None:
            self._normalized_cache = {}
        cached = self._normalized_cache.get(key)
        if cached is None:
            cached = normalize_list(self.world, provider.daily_list(day))
            self._normalized_cache[key] = cached
        return cached

    def normalized_monthly(self, provider_name: str) -> NormalizedList:
        """A provider's normalized monthly list (cached)."""
        provider = self.providers[provider_name]
        key = (provider_name + "#monthly", None)
        if self._normalized_cache is None:
            self._normalized_cache = {}
        cached = self._normalized_cache.get(key)
        if cached is None:
            cached = normalize_list(self.world, provider.monthly_list())
            self._normalized_cache[key] = cached
        return cached

    @property
    def magnitudes(self) -> Tuple[int, ...]:
        """Concrete bucket sizes for this universe."""
        return self.config.bucket_sizes

    @property
    def magnitude_labels(self) -> Tuple[str, ...]:
        """The paper's magnitude labels (1K/10K/100K/1M)."""
        return self.config.bucket_labels


#: Most contexts kept alive in-process; least recently used evicted first.
MAX_CACHED_CONTEXTS = 8

_CONTEXTS: "OrderedDict[Tuple[WorldConfig, Optional[str]], ExperimentContext]" = OrderedDict()


def clear_contexts() -> None:
    """Drop every memoized context (frees worlds in long-lived processes)."""
    _CONTEXTS.clear()


def experiment_context(
    config: Optional[WorldConfig] = None, store: Optional["object"] = None
) -> ExperimentContext:
    """Build (or fetch the cached) experiment context for a config.

    Args:
        config: the world configuration (:data:`BENCH_CONFIG` by default).
        store: an optional :class:`~repro.store.ArtifactStore`.  When given,
          the world is hydrated from the store if present (persisted on a
          cold build), and traffic tensors, CDN metric counts, and provider
          lists flow through it lazily.
    """
    config = config if config is not None else BENCH_CONFIG
    memo_key = (config, None if store is None else str(getattr(store, "root", store)))
    cached = _CONTEXTS.get(memo_key)
    if cached is not None:
        _CONTEXTS.move_to_end(memo_key)
        return cached

    if store is None:
        world = build_world(config)
        traffic = TrafficModel(world)
        telemetry = ChromeTelemetry(world, traffic)
        providers = build_providers(world, traffic, telemetry)
        engine = CdnMetricEngine(world, traffic)
    else:
        from repro.store import (
            attach_engine_store,
            attach_traffic_store,
            config_key,
            load_or_build_world,
            wrap_providers,
        )

        cfg_key = config_key(config)
        world = load_or_build_world(store, cfg_key, config)
        traffic = TrafficModel(world)
        attach_traffic_store(traffic, store, cfg_key)
        telemetry = ChromeTelemetry(world, traffic)
        providers = wrap_providers(
            build_providers(world, traffic, telemetry), store, cfg_key
        )
        engine = CdnMetricEngine(world, traffic)
        attach_engine_store(engine, store, cfg_key)
    evaluator = CloudflareEvaluator(world, engine)
    context = ExperimentContext(
        config=config,
        world=world,
        traffic=traffic,
        telemetry=telemetry,
        engine=engine,
        evaluator=evaluator,
        providers=providers,
    )
    _CONTEXTS[memo_key] = context
    while len(_CONTEXTS) > MAX_CACHED_CONTEXTS:
        _CONTEXTS.popitem(last=False)
    return context
