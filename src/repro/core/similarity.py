"""Similarity measures between ranked lists.

The paper compares lists two ways (Section 4.3):

* **Jaccard index** — ``|A ∩ B| / |A ∪ B|`` over the lists as unordered
  sets; the paper's primary measure, since researchers mostly use top lists
  as sets.
* **Spearman's rank correlation** — computed over the *intersection* of the
  two lists, correlating each element's rank position within each list.

Spearman is implemented from first principles (average ranks for ties,
Pearson correlation of the rank vectors, t-approximation p-value) and
validated against ``scipy.stats.spearmanr`` in the test suite.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np
from scipy import stats as _scipy_stats

__all__ = [
    "jaccard_index",
    "spearman",
    "SpearmanResult",
    "rank_correlation_of_lists",
    "pairwise_jaccard",
    "pairwise_spearman",
    "average_ranks",
    "interpret_spearman",
]


def jaccard_index(a: Iterable[int], b: Iterable[int]) -> float:
    """Jaccard index of two collections treated as sets.

    Returns 1.0 for two empty collections (identical sets), matching the
    set-theoretic convention.
    """
    set_a = set(a)
    set_b = set(b)
    union = len(set_a | set_b)
    if union == 0:
        return 1.0
    return len(set_a & set_b) / union


def average_ranks(values: np.ndarray) -> np.ndarray:
    """Fractional (average) ranks of ``values``, 1-based; ties share the
    mean of the positions they occupy.

    >>> average_ranks(np.array([10.0, 20.0, 20.0, 5.0])).tolist()
    [2.0, 3.5, 3.5, 1.0]
    """
    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=np.float64)
    sorted_values = values[order]
    i = 0
    while i < len(values):
        j = i
        while j + 1 < len(values) and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    return ranks


class SpearmanResult(Tuple[float, float]):
    """A ``(rho, pvalue)`` pair with named accessors."""

    __slots__ = ()

    def __new__(cls, rho: float, pvalue: float) -> "SpearmanResult":
        return super().__new__(cls, (rho, pvalue))

    @property
    def rho(self) -> float:
        """The rank correlation coefficient in [-1, 1]."""
        return self[0]

    @property
    def pvalue(self) -> float:
        """Two-sided p-value under the t-approximation."""
        return self[1]


def spearman(x: Sequence[float], y: Sequence[float]) -> SpearmanResult:
    """Spearman rank correlation with tie handling and a t-test p-value.

    Args:
        x, y: paired observations; length >= 2.

    Returns:
        :class:`SpearmanResult`.  When either input is constant the
        correlation is undefined; returns ``(nan, nan)`` like scipy.

    Raises:
        ValueError: on length mismatch or fewer than two pairs.
    """
    x_arr = np.asarray(x, dtype=np.float64)
    y_arr = np.asarray(y, dtype=np.float64)
    if x_arr.shape != y_arr.shape:
        raise ValueError("x and y must have the same length")
    n = len(x_arr)
    if n < 2:
        raise ValueError("need at least two observations")

    rx = average_ranks(x_arr)
    ry = average_ranks(y_arr)
    rx_c = rx - rx.mean()
    ry_c = ry - ry.mean()
    denom = math.sqrt(float(rx_c @ rx_c) * float(ry_c @ ry_c))
    if denom == 0.0:
        return SpearmanResult(float("nan"), float("nan"))
    rho = float(rx_c @ ry_c) / denom
    rho = max(-1.0, min(1.0, rho))

    if n == 2 or abs(rho) == 1.0:
        pvalue = 0.0 if abs(rho) == 1.0 and n > 2 else 1.0
    else:
        t = rho * math.sqrt((n - 2) / (1.0 - rho * rho))
        pvalue = float(2.0 * _scipy_stats.t.sf(abs(t), df=n - 2))
    return SpearmanResult(rho, pvalue)


def rank_correlation_of_lists(
    list_a: Sequence[int], list_b: Sequence[int]
) -> SpearmanResult:
    """Spearman correlation of two ranked lists over their intersection.

    Each list is an ordered sequence of unique ids, best first.  Elements
    present in both lists are correlated by their 1-based positions; this
    is the paper's method for comparing a top list against a Cloudflare
    metric ranking.

    Returns ``(nan, nan)`` when the intersection has fewer than two
    elements.
    """
    pos_a: Dict[int, int] = {item: i for i, item in enumerate(list_a)}
    shared_positions_a = []
    shared_positions_b = []
    for j, item in enumerate(list_b):
        i = pos_a.get(item)
        if i is not None:
            shared_positions_a.append(i)
            shared_positions_b.append(j)
    if len(shared_positions_a) < 2:
        return SpearmanResult(float("nan"), float("nan"))
    return spearman(shared_positions_a, shared_positions_b)


def pairwise_jaccard(lists: Dict[str, Sequence[int]]) -> Dict[Tuple[str, str], float]:
    """Jaccard index for every unordered pair of named lists.

    Returns a symmetric mapping including both orderings plus the diagonal.
    """
    names = list(lists)
    sets = {name: set(lists[name]) for name in names}
    out: Dict[Tuple[str, str], float] = {}
    for i, a in enumerate(names):
        out[(a, a)] = 1.0
        for b in names[i + 1 :]:
            union = len(sets[a] | sets[b])
            value = (len(sets[a] & sets[b]) / union) if union else 1.0
            out[(a, b)] = value
            out[(b, a)] = value
    return out


def pairwise_spearman(lists: Dict[str, Sequence[int]]) -> Dict[Tuple[str, str], float]:
    """Intersection Spearman rho for every pair of named ranked lists."""
    names = list(lists)
    out: Dict[Tuple[str, str], float] = {}
    for i, a in enumerate(names):
        out[(a, a)] = 1.0
        for b in names[i + 1 :]:
            rho = rank_correlation_of_lists(lists[a], lists[b]).rho
            out[(a, b)] = rho
            out[(b, a)] = rho
    return out


#: Interpretation bands for correlation coefficients (Section 4.4).
_INTERPRETATION_BANDS = (
    (0.10, "negligible"),
    (0.40, "weak"),
    (0.70, "moderate"),
    (0.90, "strong"),
    (float("inf"), "very strong"),
)


def interpret_spearman(rho: float) -> str:
    """The paper's qualitative band for a correlation magnitude.

    >>> interpret_spearman(0.45)
    'moderate'
    """
    if math.isnan(rho):
        return "undefined"
    magnitude = abs(rho)
    for upper, label in _INTERPRETATION_BANDS:
        if magnitude < upper:
            return label
    raise AssertionError("unreachable")
