"""The paper's analysis contribution.

Everything in this package operates on ranked lists of opaque ids (site
indices or name-table rows) plus the vantage-point data produced by the
other subsystems:

* :mod:`repro.core.similarity` — Jaccard index and Spearman rank
  correlation, the paper's two comparison measures (Section 4.3/4.4).
* :mod:`repro.core.normalize` — PSL-based list normalization (Section 4.2).
* :mod:`repro.core.evaluation` — the Cloudflare-subset top-n-vs-top-n
  evaluation methodology (Section 4.3) and its month-averaged form.
* :mod:`repro.core.buckets` — rank-magnitude buckets and movement analysis
  (Section 5.3, Figure 5).
* :mod:`repro.core.temporal` — daily stability and periodicity (Figure 3).
* :mod:`repro.core.bias` — platform/country bias evaluation against Chrome
  telemetry (Figures 4, 6, 7).
* :mod:`repro.core.regression` — logistic regression of list inclusion on
  site category, reported as odds ratios (Table 3).
* :mod:`repro.core.survey` — the Section 2 literature-survey statistics.
* :mod:`repro.core.report` — text rendering of tables and heatmaps.
"""

from repro.core.similarity import (
    jaccard_index,
    pairwise_jaccard,
    pairwise_spearman,
    rank_correlation_of_lists,
    spearman,
)

__all__ = [
    "jaccard_index",
    "pairwise_jaccard",
    "pairwise_spearman",
    "rank_correlation_of_lists",
    "spearman",
]
