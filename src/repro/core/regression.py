"""Logistic regression of list inclusion on website category (Section 6.4).

For each domain in the Cloudflare top-100K, the paper models the binary
outcome "included by top list L" with the domain's category as the
predictor, one category at a time against an all-others control, and
reports odds ratios with ``p < 0.01`` after a Bonferroni correction of 22
(Table 3).

The regression machinery is implemented from scratch (iteratively
reweighted least squares with Wald standard errors) and validated against
closed-form 2x2 odds ratios and scipy in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np
from scipy import stats as _scipy_stats

from repro.core.normalize import NormalizedList
from repro.weblib.categories import CATEGORIES
from repro.worldgen.world import World

__all__ = [
    "LogisticFit",
    "logistic_regression",
    "CategoryOddsResult",
    "category_inclusion_odds",
    "least_included_rank",
]


@dataclass
class LogisticFit:
    """A fitted logistic regression.

    Attributes:
        coef: coefficients, intercept first.
        std_err: Wald standard errors per coefficient.
        z_values: Wald z statistics.
        p_values: two-sided p-values.
        converged: whether IRLS converged.
        iterations: IRLS iterations used.
    """

    coef: np.ndarray
    std_err: np.ndarray
    z_values: np.ndarray
    p_values: np.ndarray
    converged: bool
    iterations: int

    def odds_ratio(self, index: int = 1) -> float:
        """``exp(coef[index])`` — the odds ratio of predictor ``index``."""
        return float(np.exp(self.coef[index]))


def logistic_regression(
    X: np.ndarray,
    y: np.ndarray,
    max_iter: int = 50,
    tol: float = 1e-8,
    ridge: float = 1e-9,
) -> LogisticFit:
    """Fit ``P(y=1) = sigmoid(b0 + X @ b)`` by IRLS.

    Args:
        X: ``[n, k]`` design matrix (no intercept column; one is added).
        y: binary outcomes.
        max_iter: IRLS iteration cap.
        tol: convergence threshold on the max coefficient update.
        ridge: tiny L2 stabilizer for separable data.

    Raises:
        ValueError: on shape mismatch or non-binary outcomes.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.ndim != 2 or len(X) != len(y):
        raise ValueError("X must be [n, k] aligned with y")
    if not np.isin(y, (0.0, 1.0)).all():
        raise ValueError("y must be binary")

    design = np.column_stack([np.ones(len(y)), X])
    k = design.shape[1]
    beta = np.zeros(k)
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        eta = design @ beta
        # Clip to keep weights finite under quasi-separation.
        eta = np.clip(eta, -30.0, 30.0)
        mu = 1.0 / (1.0 + np.exp(-eta))
        w = mu * (1.0 - mu)
        w = np.maximum(w, 1e-12)
        # Newton step: solve (X'WX + ridge I) d = X'(y - mu).
        hessian = design.T @ (design * w[:, None]) + ridge * np.eye(k)
        gradient = design.T @ (y - mu)
        step = np.linalg.solve(hessian, gradient)
        beta = beta + step
        if np.max(np.abs(step)) < tol:
            converged = True
            break

    eta = np.clip(design @ beta, -30.0, 30.0)
    mu = 1.0 / (1.0 + np.exp(-eta))
    w = np.maximum(mu * (1.0 - mu), 1e-12)
    covariance = np.linalg.inv(design.T @ (design * w[:, None]) + ridge * np.eye(k))
    std_err = np.sqrt(np.diag(covariance))
    z_values = beta / std_err
    p_values = 2.0 * _scipy_stats.norm.sf(np.abs(z_values))
    return LogisticFit(
        coef=beta,
        std_err=std_err,
        z_values=z_values,
        p_values=p_values,
        converged=converged,
        iterations=iteration,
    )


@dataclass(frozen=True)
class CategoryOddsResult:
    """Table 3 cell: one (list, category) inclusion odds ratio.

    Attributes:
        category: category name.
        odds_ratio: odds of inclusion for the category vs all others.
        p_value: Wald p-value of the category coefficient.
        significant: whether ``p < alpha / bonferroni`` held.
        n_category: number of universe domains in the category.
        n_included: number of those the list included.
    """

    category: str
    odds_ratio: float
    p_value: float
    significant: bool
    n_category: int
    n_included: int


def least_included_rank(
    normalized: NormalizedList, universe_sites: np.ndarray
) -> Optional[int]:
    """The paper's D_least: the worst list rank among universe domains the
    list includes (None when the list includes none of them)."""
    member = np.isin(normalized.sites, universe_sites)
    if not member.any():
        return None
    return int(normalized.ranks[member].max())


def category_inclusion_odds(
    world: World,
    universe_sites: np.ndarray,
    normalized: NormalizedList,
    alpha: float = 0.01,
    bonferroni: Optional[int] = None,
    categories: Optional[Sequence[str]] = None,
) -> Dict[str, CategoryOddsResult]:
    """Table 3: per-category inclusion odds ratios for one list.

    Args:
        world: the simulated world (category labels come from its ground
          truth, standing in for the Cloudflare categorization API).
        universe_sites: the Cloudflare-side universe (e.g. the CF top-100K
          under all HTTP requests).
        normalized: the evaluated list, normalized to domains.
        alpha: significance level before correction (paper: 0.01).
        bonferroni: correction factor (defaults to the category count).
        categories: category names to test (defaults to all).
    """
    names = list(categories) if categories is not None else [c.name for c in CATEGORIES]
    bonferroni = bonferroni if bonferroni is not None else len(names)
    threshold = alpha / bonferroni

    included = np.isin(universe_sites, normalized.sites).astype(np.float64)
    cat_of = world.sites.category[universe_sites]

    out: Dict[str, CategoryOddsResult] = {}
    cat_index = {c.name: i for i, c in enumerate(CATEGORIES)}
    for name in names:
        indicator = (cat_of == cat_index[name]).astype(np.float64)
        n_category = int(indicator.sum())
        n_included = int((indicator * included).sum())
        if n_category == 0 or n_category == len(universe_sites):
            out[name] = CategoryOddsResult(
                category=name,
                odds_ratio=float("nan"),
                p_value=float("nan"),
                significant=False,
                n_category=n_category,
                n_included=n_included,
            )
            continue
        fit = logistic_regression(indicator[:, None], included)
        out[name] = CategoryOddsResult(
            category=name,
            odds_ratio=fit.odds_ratio(1),
            p_value=float(fit.p_values[1]),
            significant=bool(fit.p_values[1] < threshold),
            n_category=n_category,
            n_included=n_included,
        )
    return out
