"""Mapping from experiment results to SVG files.

``repro fig2 --svg-dir out/`` drops the figure next to the text artifact;
this module knows which renderer each experiment's data feeds.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.cdn.filters import ALL_COMBINATIONS, FINAL_SEVEN
from repro.core.experiments import ExperimentResult
from repro.core.figures import (
    render_heatmap_svg,
    render_movement_svg,
    render_series_svg,
    save_svg,
)
from repro.providers.registry import PROVIDER_ORDER
from repro.telemetry.chrome import TELEMETRY_METRICS
from repro.worldgen.countries import TELEMETRY_COUNTRIES

__all__ = ["export_figures"]

PathLike = Union[str, Path]


def _heatmap_pair(result, rows, cols, directory: Path, hi_jj=1.0, hi_rho=1.0) -> List[Path]:
    paths = []
    for key, suffix, hi in (("jaccard", "jaccard", hi_jj), ("spearman", "spearman", hi_rho)):
        values = result.data.get(key)
        if not values:
            continue
        svg = render_heatmap_svg(
            rows, cols, values, title=f"{result.title} — {suffix}", hi=hi
        )
        paths.append(save_svg(svg, directory / f"{result.name}_{suffix}.svg"))
    return paths


def export_figures(result: ExperimentResult, directory: PathLike) -> List[Path]:
    """Write the SVG rendering(s) of an experiment result.

    Returns the written paths; experiments without a graphical form
    (tables, the survey) return an empty list.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    name = result.name

    if name == "fig1":
        labels = list(FINAL_SEVEN)
        return _heatmap_pair(result, labels, labels, directory)

    if name == "fig8":
        labels = list(ALL_COMBINATIONS)
        return _heatmap_pair(result, labels, labels, directory)

    if name == "fig2":
        rows = list(PROVIDER_ORDER)
        cols = list(FINAL_SEVEN)
        return _heatmap_pair(result, rows, cols, directory, hi_jj=0.6, hi_rho=0.6)

    if name == "fig6":
        labels = list(TELEMETRY_METRICS)
        jj = {pair: cell.jaccard for pair, cell in result.data["cells"].items()}
        rho = {pair: cell.spearman for pair, cell in result.data["cells"].items()}
        for mapping in (jj, rho):
            for a in labels:
                mapping[(a, a)] = 1.0
            for (a, b) in list(mapping):
                mapping[(b, a)] = mapping[(a, b)]
        paths = [
            save_svg(render_heatmap_svg(labels, labels, jj,
                                        title="Intra-Chrome Jaccard"),
                     directory / "fig6_jaccard.svg"),
            save_svg(render_heatmap_svg(labels, labels, rho,
                                        title="Intra-Chrome Spearman"),
                     directory / "fig6_spearman.svg"),
        ]
        return paths

    if name in ("fig4", "fig7"):
        cells = result.data["cells"]
        rows = list(cells)
        cols = (
            ["windows", "android"] if name == "fig4" else list(TELEMETRY_COUNTRIES)
        )
        jj = {(r, c): cells[r][c].jaccard for r in rows for c in cols}
        rho = {(r, c): cells[r][c].spearman for r in rows for c in cols}
        return [
            save_svg(render_heatmap_svg(rows, cols, jj,
                                        title=f"{result.title} — jaccard", hi=0.4),
                     directory / f"{name}_jaccard.svg"),
            save_svg(render_heatmap_svg(rows, cols, rho,
                                        title=f"{result.title} — spearman", hi=0.6),
                     directory / f"{name}_spearman.svg"),
        ]

    if name == "fig3":
        series = result.data["series"]
        weekend = [
            int(day)
            for day in next(iter(series.values())).days
            if next(iter(series.values())).weekend[int(day)]
        ]
        jj_series: Dict[str, list] = {
            provider: list(s.jaccard) for provider, s in series.items()
        }
        rho_series = {
            provider: list(s.spearman)
            for provider, s in series.items()
            if not np.all(np.isnan(s.spearman))
        }
        return [
            save_svg(render_series_svg(jj_series, title="Daily Jaccard",
                                       weekend_days=weekend),
                     directory / "fig3_jaccard.svg"),
            save_svg(render_series_svg(rho_series, title="Daily Spearman",
                                       weekend_days=weekend),
                     directory / "fig3_spearman.svg"),
        ]

    if name == "fig5":
        paths = []
        for provider, matrix in result.data["matrices"].items():
            svg = render_movement_svg(matrix.labels, matrix.counts, provider)
            paths.append(save_svg(svg, directory / f"fig5_{provider}.svg"))
        return paths

    return []
