"""The Cloudflare-subset evaluation methodology (Section 4.3).

Cloudflare serves only a subset of top sites, so a top list cannot be
compared to a Cloudflare metric ranking directly.  The paper's method,
implemented here:

1. normalize the top list to registrable domains (min rank per domain);
2. take the list's top ``magnitude`` domains;
3. keep only the Cloudflare-served ones (via the cf-ray probe) — say there
   are ``n`` of them;
4. compare that ranked set against the top ``n`` Cloudflare sites under a
   given metric, by Jaccard index (sets) and Spearman correlation (ranks
   over the intersection — skipped for bucketed lists like CrUX).

Daily results are averaged over the configured window, as in the paper
("we average the results across days in the month").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.cdn.metrics import CdnMetricEngine
from repro.core.normalize import NormalizedList, normalize_list
from repro.core.similarity import jaccard_index, rank_correlation_of_lists
from repro.providers.base import TopListProvider
from repro.worldgen.world import World

__all__ = ["DayEvaluation", "MonthEvaluation", "CloudflareEvaluator"]


@dataclass(frozen=True)
class DayEvaluation:
    """One (list, metric, magnitude, day) comparison.

    Attributes:
        jaccard: Jaccard index between list-side and Cloudflare-side sets.
        spearman: rank correlation over the intersection (nan when not
          computable — bucketed list or intersection < 2).
        n: number of Cloudflare-served sites in the list's top slice.
        intersection: size of the two sets' intersection.
    """

    jaccard: float
    spearman: float
    n: int
    intersection: int


@dataclass(frozen=True)
class MonthEvaluation:
    """Day-averaged comparison results.

    Attributes mirror :class:`DayEvaluation`; ``spearman`` is the mean of
    defined daily values (nan when never defined).
    """

    jaccard: float
    spearman: float
    n: float
    intersection: float
    days: int


class CloudflareEvaluator:
    """Evaluates top lists against the CDN metric engine.

    Args:
        world: the shared world.
        engine: the Cloudflare metric engine built over the same world.
        cf_served: override for the per-site Cloudflare flag (the default
          reads the world's ground truth, which the HEAD probe reproduces
          exactly; tests verify the equivalence).
    """

    def __init__(
        self,
        world: World,
        engine: CdnMetricEngine,
        cf_served: Optional[np.ndarray] = None,
    ) -> None:
        self._world = world
        self._engine = engine
        self._cf = cf_served if cf_served is not None else world.sites.cf_served
        self._norm_cache: Dict[tuple, NormalizedList] = {}

    @property
    def engine(self) -> CdnMetricEngine:
        """The Cloudflare metric engine."""
        return self._engine

    def normalized(self, provider: TopListProvider, day: int) -> NormalizedList:
        """The provider's normalized list for ``day`` (cached).

        Keyed by provider *identity*, not name: two differently configured
        instances of the same list (e.g. an attacked and a clean Alexa)
        must not share cache entries.
        """
        key = (id(provider), day if provider.publishes_daily else None)
        cached = self._norm_cache.get(key)
        if cached is None:
            cached = normalize_list(self._world, provider.daily_list(day))
            self._norm_cache[key] = cached
        return cached

    def cloudflare_slice(
        self, normalized: NormalizedList, magnitude: int
    ) -> np.ndarray:
        """The Cloudflare-served sites in a list's top ``magnitude``, in
        list-rank order."""
        top = normalized.top_sites(magnitude)
        return top[self._cf[top]]

    def evaluate_day(
        self,
        provider: TopListProvider,
        day: int,
        combo: str,
        magnitude: int,
    ) -> DayEvaluation:
        """Compare one list snapshot against one metric at one magnitude."""
        normalized = self.normalized(provider, day)
        list_side = self.cloudflare_slice(normalized, magnitude)
        n = len(list_side)
        cf_side = self._engine.top(day, combo, n)

        jj = jaccard_index(list_side, cf_side)
        if normalized.is_bucketed or n < 2:
            rho = float("nan")
        else:
            rho = rank_correlation_of_lists(list_side, cf_side).rho
        intersection = len(set(list_side.tolist()) & set(cf_side.tolist()))
        return DayEvaluation(jaccard=jj, spearman=rho, n=n, intersection=intersection)

    def evaluate_month(
        self,
        provider: TopListProvider,
        combo: str,
        magnitude: int,
        days: Optional[Iterable[int]] = None,
    ) -> MonthEvaluation:
        """Day-averaged comparison over the window."""
        day_list = list(days) if days is not None else list(range(self._world.config.n_days))
        jj_values = []
        rho_values = []
        n_values = []
        inter_values = []
        for day in day_list:
            result = self.evaluate_day(provider, day, combo, magnitude)
            jj_values.append(result.jaccard)
            n_values.append(result.n)
            inter_values.append(result.intersection)
            if not np.isnan(result.spearman):
                rho_values.append(result.spearman)
        return MonthEvaluation(
            jaccard=float(np.mean(jj_values)),
            spearman=float(np.mean(rho_values)) if rho_values else float("nan"),
            n=float(np.mean(n_values)),
            intersection=float(np.mean(inter_values)),
            days=len(day_list),
        )

    def evaluate_matrix(
        self,
        providers: Dict[str, TopListProvider],
        combos: Sequence[str],
        magnitude: int,
        days: Optional[Iterable[int]] = None,
    ) -> Dict[str, Dict[str, MonthEvaluation]]:
        """Figure 2: every provider against every metric.

        Returns ``{provider: {combo: MonthEvaluation}}``.
        """
        day_list = list(days) if days is not None else None
        return {
            name: {
                combo: self.evaluate_month(provider, combo, magnitude, days=day_list)
                for combo in combos
            }
            for name, provider in providers.items()
        }

    def coverage(
        self,
        provider: TopListProvider,
        magnitude: int,
        day: Optional[int] = None,
    ) -> float:
        """Table 1: fraction of the list's raw top ``magnitude`` entries
        whose site Cloudflare serves (infrastructure names count as
        unserved, as a probe would find)."""
        snapshot_day = day if day is not None else self._world.config.n_days // 2
        ranked = provider.daily_list(snapshot_day)
        rows = ranked.name_rows[:magnitude]
        sites = self._world.names.site[rows]
        served = np.zeros(len(sites), dtype=bool)
        owned = sites >= 0
        served[owned] = self._cf[sites[owned]]
        return float(served.mean()) if len(served) else 0.0
