"""The Section 2 literature survey.

The paper surveys 2021 papers at USENIX Security, IMC, NSDI, SOUPS, NDSS,
and WWW that use top lists and classifies each use as *set* (unordered set
of popular sites), *rank* (individual site ranks used directly), or *both*.
Headline numbers: of papers using top lists, 50 (85%) use them only as a
set, 9 (15%) use rank directly, and 5 (8%) use both.

The underlying per-paper data is not published, so this module encodes a
per-venue breakdown consistent with every aggregate the paper states and
recomputes the statistics from it — keeping the analysis honest about
which numbers are transcription and which are derivation.  It also encodes
the Scheitle et al. venue-usage rates quoted in Section 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "VenueSurvey",
    "SURVEY_2021",
    "SCHEITLE_USAGE_RATES",
    "UsageStatistics",
    "usage_statistics",
]


@dataclass(frozen=True)
class VenueSurvey:
    """Top-list usage at one venue.

    Attributes:
        venue: venue name.
        set_only: papers using lists only as an unordered set.
        rank_only: papers using only individual ranks.
        both: papers using lists as both set and ranking.
    """

    venue: str
    set_only: int
    rank_only: int
    both: int

    @property
    def total(self) -> int:
        """Papers using top lists at the venue."""
        return self.set_only + self.rank_only + self.both


#: Per-venue breakdown consistent with the paper's aggregates: 59 papers
#: total, 50 set-only (85%), 9 using rank (15%), 5 of which use both (8%).
#: The venue split is our allocation (the paper reports only aggregates).
SURVEY_2021: Tuple[VenueSurvey, ...] = (
    VenueSurvey("USENIX Security", set_only=13, rank_only=1, both=2),
    VenueSurvey("IMC", set_only=12, rank_only=1, both=1),
    VenueSurvey("NSDI", set_only=4, rank_only=0, both=0),
    VenueSurvey("SOUPS", set_only=3, rank_only=0, both=0),
    VenueSurvey("NDSS", set_only=8, rank_only=1, both=1),
    VenueSurvey("WWW", set_only=10, rank_only=1, both=1),
)

#: Scheitle et al. (IMC '18) venue-class usage rates quoted in Section 2.
SCHEITLE_USAGE_RATES: Dict[str, float] = {
    "measurement": 0.22,
    "security": 0.09,
    "networking": 0.06,
    "web": 0.08,
}


@dataclass(frozen=True)
class UsageStatistics:
    """Aggregate survey statistics (the Section 2 numbers)."""

    papers: int
    set_only: int
    rank_using: int
    both: int
    set_only_fraction: float
    rank_using_fraction: float
    both_fraction: float


def usage_statistics(
    venues: Tuple[VenueSurvey, ...] = SURVEY_2021,
) -> UsageStatistics:
    """Recompute the aggregate statistics from the per-venue data.

    ``rank_using`` counts papers that use ranks at all (rank-only plus
    both), matching the paper's "9 (15%) use website rank directly".
    """
    papers = sum(v.total for v in venues)
    set_only = sum(v.set_only for v in venues)
    both = sum(v.both for v in venues)
    rank_using = sum(v.rank_only for v in venues) + both
    return UsageStatistics(
        papers=papers,
        set_only=set_only,
        rank_using=rank_using,
        both=both,
        set_only_fraction=set_only / papers,
        rank_using_fraction=rank_using / papers,
        both_fraction=both / papers,
    )
