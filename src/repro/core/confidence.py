"""Bootstrap confidence intervals for day-averaged scores.

The paper averages daily Jaccard/Spearman values over February without
error bars; at bench scale the day-to-day variation is worth quantifying,
so the evaluation layer can report a percentile-bootstrap interval around
any day-averaged statistic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["BootstrapCI", "bootstrap_ci", "evaluate_with_ci"]


@dataclass(frozen=True)
class BootstrapCI:
    """A percentile-bootstrap interval around a mean.

    Attributes:
        mean: the point estimate.
        low, high: the interval bounds.
        level: the confidence level used.
        n: number of underlying observations.
    """

    mean: float
    low: float
    high: float
    level: float
    n: int

    @property
    def width(self) -> float:
        """Interval width (high - low)."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """Whether the interval covers ``value``."""
        return self.low <= value <= self.high


def bootstrap_ci(
    values: Sequence[float],
    level: float = 0.95,
    resamples: int = 2000,
    seed: int = 7,
) -> BootstrapCI:
    """Percentile bootstrap CI of the mean of ``values``.

    NaNs are dropped first; a single observation yields a degenerate
    interval at its value.

    Raises:
        ValueError: for an empty (or all-NaN) input or a bad level.
    """
    if not 0.0 < level < 1.0:
        raise ValueError("level must be in (0, 1)")
    cleaned = np.asarray([v for v in values if v == v], dtype=np.float64)
    if len(cleaned) == 0:
        raise ValueError("need at least one finite observation")
    mean = float(cleaned.mean())
    if len(cleaned) == 1:
        return BootstrapCI(mean=mean, low=mean, high=mean, level=level, n=1)

    rng = np.random.default_rng(seed)
    samples = rng.choice(cleaned, size=(resamples, len(cleaned)), replace=True)
    means = samples.mean(axis=1)
    alpha = (1.0 - level) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return BootstrapCI(
        mean=mean, low=float(low), high=float(high), level=level, n=len(cleaned)
    )


def evaluate_with_ci(
    evaluator,
    provider,
    combo: str,
    magnitude: int,
    days: Optional[Sequence[int]] = None,
    level: float = 0.95,
) -> BootstrapCI:
    """Day-level bootstrap CI of a (list, metric, magnitude) Jaccard score.

    A convenience wrapper over
    :meth:`repro.core.evaluation.CloudflareEvaluator.evaluate_day`.
    """
    day_list = (
        list(days)
        if days is not None
        else list(range(evaluator.engine.world.config.n_days))
    )
    values = [
        evaluator.evaluate_day(provider, day, combo, magnitude).jaccard
        for day in day_list
    ]
    return bootstrap_ci(values, level=level)
