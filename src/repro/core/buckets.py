"""Rank-magnitude buckets and movement analysis (Section 5.3, Figure 5).

Researchers mostly consume top lists as rank-magnitude buckets ("the top
10K").  The paper asks: when a list places a domain in its top-10K bucket,
where does Cloudflare's ground truth place it?

Methodology reproduced here:

1. Build the Cloudflare-side bucket assignment from the two *bookend*
   metrics (all HTTP requests and root page loads, which over- and
   under-estimate pageloads respectively); keep only domains that both
   metrics place in the same bucket.
2. For each top list, take its Cloudflare-served domains per bucket and
   cross-tabulate list bucket vs Cloudflare bucket.
3. Report the overranking statistics: share of a list bucket that
   Cloudflare places in a strictly less-popular bucket, and the share
   misplaced by two or more orders of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.cdn.metrics import CdnMetricEngine
from repro.core.normalize import NormalizedList

__all__ = [
    "BucketAssignment",
    "MovementMatrix",
    "assign_buckets",
    "bookend_consensus_buckets",
    "movement_matrix",
]

#: The bookend metrics (Section 3.4): upper and lower bounds on pageloads.
BOOKEND_METRICS: Tuple[str, str] = ("all:requests", "root:requests")


@dataclass
class BucketAssignment:
    """Per-site bucket indices under some ranking.

    Attributes:
        bucket: per-site bucket index (0 = smallest/most popular bucket,
          ``len(bounds)`` = beyond the last bucket / absent).
        bounds: cumulative bucket sizes (e.g. ``(40, 400, 4000, 20000)``).
        labels: display labels aligned with ``bounds``.
    """

    bucket: np.ndarray
    bounds: Tuple[int, ...]
    labels: Tuple[str, ...]

    @property
    def absent_bucket(self) -> int:
        """The pseudo-bucket index meaning "not in the ranking at all"."""
        return len(self.bounds)

    def sites_in_bucket(self, bucket: int) -> np.ndarray:
        """Site indices assigned to a bucket."""
        return np.flatnonzero(self.bucket == bucket)


def assign_buckets(
    ranking: Sequence[int],
    n_sites: int,
    bounds: Sequence[int],
    labels: Optional[Sequence[str]] = None,
    ranks: Optional[Sequence[int]] = None,
) -> BucketAssignment:
    """Assign every site a bucket from a ranking.

    Args:
        ranking: site indices, best first.
        n_sites: universe size.
        bounds: cumulative bucket sizes, increasing.
        labels: display labels (defaults to stringified bounds).
        ranks: optional explicit 1-based ranks aligned with ``ranking``
          (used for normalized lists, whose positions are not their
          original ranks); defaults to 1..len(ranking).

    Sites absent from the ranking (or ranked beyond the last bound) get
    the absent pseudo-bucket.
    """
    bounds = tuple(int(b) for b in bounds)
    if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
        raise ValueError("bounds must be strictly increasing")
    if labels is None:
        labels = tuple(str(b) for b in bounds)
    ranking = np.asarray(ranking)
    if ranks is None:
        rank_values = np.arange(1, len(ranking) + 1)
    else:
        rank_values = np.asarray(ranks)
        if len(rank_values) != len(ranking):
            raise ValueError("ranks must align with ranking")

    bucket = np.full(n_sites, len(bounds), dtype=np.int16)
    site_bucket = np.searchsorted(np.asarray(bounds), rank_values, side="left")
    in_range = site_bucket < len(bounds)
    bucket[ranking[in_range]] = site_bucket[in_range].astype(np.int16)
    return BucketAssignment(bucket=bucket, bounds=bounds, labels=tuple(labels))


def bookend_consensus_buckets(
    engine: CdnMetricEngine,
    day: int,
    bounds: Sequence[int],
    labels: Optional[Sequence[str]] = None,
) -> Tuple[BucketAssignment, np.ndarray]:
    """Cloudflare-side buckets agreed by both bookend metrics.

    Returns:
        ``(assignment, consensus_sites)`` where ``assignment`` holds the
        all-requests bucket indices and ``consensus_sites`` are the sites
        both bookends place in the same bucket (the analysis universe of
        Section 5.3).
    """
    upper = assign_buckets(
        engine.ranking(day, BOOKEND_METRICS[0]), engine.world.n_sites, bounds, labels
    )
    lower = assign_buckets(
        engine.ranking(day, BOOKEND_METRICS[1]), engine.world.n_sites, bounds, labels
    )
    agree = (upper.bucket == lower.bucket) & (upper.bucket < upper.absent_bucket)
    return upper, np.flatnonzero(agree)


@dataclass
class MovementMatrix:
    """Cross-tabulation of Cloudflare buckets vs a list's buckets.

    Attributes:
        counts: ``[n_buckets+1, n_buckets+1]`` matrix; rows are Cloudflare
          buckets, columns are list buckets, the last index is "absent".
        labels: bucket labels (without the absent pseudo-bucket).
        provider: the evaluated list's name.
    """

    counts: np.ndarray
    labels: Tuple[str, ...]
    provider: str

    @property
    def n_buckets(self) -> int:
        """Number of real buckets (excluding "absent")."""
        return len(self.labels)

    def overranked_fraction(self, list_bucket: int, min_gap: int = 1) -> float:
        """Fraction of the list's ``list_bucket`` domains that Cloudflare
        places at least ``min_gap`` magnitudes *less* popular.

        "Overranked" means the list flatters the domain: its true
        (Cloudflare) bucket is larger-index than its list bucket.  Domains
        absent from the Cloudflare consensus are excluded (the paper only
        tracks movement of domains it can place).
        """
        column = self.counts[: self.n_buckets, list_bucket]
        total = column.sum()
        if total == 0:
            return float("nan")
        over = column[[b for b in range(self.n_buckets) if b - list_bucket >= min_gap]].sum()
        return float(over / total)

    def underranked_fraction(self, list_bucket: int, min_gap: int = 1) -> float:
        """Fraction the list places less popular than Cloudflare does."""
        column = self.counts[: self.n_buckets, list_bucket]
        total = column.sum()
        if total == 0:
            return float("nan")
        under = column[[b for b in range(self.n_buckets) if list_bucket - b >= min_gap]].sum()
        return float(under / total)

    def agreement_fraction(self) -> float:
        """Share of consensus domains whose buckets match exactly."""
        real = self.counts[: self.n_buckets, : self.n_buckets]
        total = real.sum()
        if total == 0:
            return float("nan")
        return float(np.trace(real) / total)


def movement_matrix(
    cf_assignment: BucketAssignment,
    consensus_sites: np.ndarray,
    normalized: NormalizedList,
    cf_served: np.ndarray,
) -> MovementMatrix:
    """Figure 5: movement of consensus domains between bucket systems.

    Args:
        cf_assignment: Cloudflare-side bucket assignment.
        consensus_sites: sites both bookends agree on.
        normalized: the top list, normalized to domains.
        cf_served: per-site Cloudflare flag (only Cloudflare-operated
          domains move through the analysis).
    """
    n_buckets = cf_assignment.absent_bucket
    bounds = cf_assignment.bounds

    list_bucket = np.full(len(cf_served), n_buckets, dtype=np.int16)
    site_bucket = np.searchsorted(np.asarray(bounds), normalized.ranks, side="left")
    in_range = site_bucket < n_buckets
    list_bucket[normalized.sites[in_range]] = site_bucket[in_range].astype(np.int16)

    counts = np.zeros((n_buckets + 1, n_buckets + 1), dtype=np.int64)
    tracked = consensus_sites[cf_served[consensus_sites]]
    for site in tracked:
        counts[cf_assignment.bucket[site], list_bucket[site]] += 1
    return MovementMatrix(
        counts=counts, labels=cf_assignment.labels, provider=normalized.provider
    )
