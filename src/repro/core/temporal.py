"""Temporal stability of list accuracy (Section 5.4, Figure 3).

For every day of the window, correlate each top list with one Cloudflare
metric (the paper uses all HTTP requests at the 1M magnitude) and study the
resulting time series: weekday/weekend periodicity, stability, and whether
the ordering of lists holds over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.evaluation import CloudflareEvaluator
from repro.core.similarity import spearman
from repro.providers.base import TopListProvider
from repro.worldgen.config import WorldConfig

__all__ = ["DailySeries", "TemporalAnalysis", "daily_series", "weekend_effect"]


@dataclass
class DailySeries:
    """Per-day correlation scores for one provider.

    Attributes:
        provider: list name.
        days: day indices.
        jaccard: daily Jaccard index values.
        spearman: daily Spearman values (nan where undefined).
        weekend: per-day weekend flags.
    """

    provider: str
    days: np.ndarray
    jaccard: np.ndarray
    spearman: np.ndarray
    weekend: np.ndarray

    def weekday_mean(self, values: np.ndarray) -> float:
        """Mean of a series over weekdays."""
        mask = ~self.weekend & ~np.isnan(values)
        return float(values[mask].mean()) if mask.any() else float("nan")

    def weekend_mean(self, values: np.ndarray) -> float:
        """Mean of a series over weekend days."""
        mask = self.weekend & ~np.isnan(values)
        return float(values[mask].mean()) if mask.any() else float("nan")


def daily_series(
    evaluator: CloudflareEvaluator,
    provider: TopListProvider,
    combo: str,
    magnitude: int,
    config: WorldConfig,
    days: Sequence[int] = (),
) -> DailySeries:
    """Compute the Figure 3 daily correlation series for one provider."""
    day_list = list(days) if days else list(range(config.n_days))
    jj = np.empty(len(day_list))
    rho = np.empty(len(day_list))
    weekend = np.empty(len(day_list), dtype=bool)
    for i, day in enumerate(day_list):
        result = evaluator.evaluate_day(provider, day, combo, magnitude)
        jj[i] = result.jaccard
        rho[i] = result.spearman
        weekend[i] = config.is_weekend(day)
    return DailySeries(
        provider=provider.name,
        days=np.asarray(day_list),
        jaccard=jj,
        spearman=rho,
        weekend=weekend,
    )


def weekend_effect(series: DailySeries) -> Tuple[float, float]:
    """Weekend-minus-weekday deltas for (jaccard, spearman).

    Positive values mean the list tracks Cloudflare better on weekends —
    the paper's observation for Alexa and Umbrella Spearman correlations.
    """
    return (
        series.weekend_mean(series.jaccard) - series.weekday_mean(series.jaccard),
        series.weekend_mean(series.spearman) - series.weekday_mean(series.spearman),
    )


@dataclass
class TemporalAnalysis:
    """Bundle of daily series plus cross-list stability statistics."""

    series: Dict[str, DailySeries]

    def ordering_stability(self) -> float:
        """Mean pairwise Spearman between per-day orderings of lists by
        Jaccard — 1.0 means the ranking of lists never changes day to day
        (the paper: "the order of top lists ... is largely consistent")."""
        names = list(self.series)
        if len(names) < 2:
            return float("nan")
        day_count = len(next(iter(self.series.values())).days)
        orderings: List[np.ndarray] = []
        for i in range(day_count):
            scores = [self.series[name].jaccard[i] for name in names]
            orderings.append(np.argsort(np.argsort(scores)))
        rhos = []
        for i in range(len(orderings)):
            for j in range(i + 1, len(orderings)):
                rhos.append(spearman(orderings[i], orderings[j]).rho)
        return float(np.nanmean(rhos))

    def periodicity_strength(self, provider: str) -> float:
        """Weekly periodicity of a provider's Jaccard series: one minus the
        ratio of within-weekday-group variance to total variance.  0 means
        no weekly structure; values near 1 mean the weekday fully
        determines the score (Umbrella's signature in Figure 3)."""
        series = self.series[provider]
        values = series.jaccard
        days = series.days
        total_var = float(np.var(values))
        if total_var == 0:
            return 0.0
        groups = [values[(days % 7) == k] for k in range(7)]
        within = float(
            np.mean([np.var(group) for group in groups if len(group) > 0])
        )
        return max(0.0, 1.0 - within / total_var)

    def weekly_amplitude(self, provider: str) -> float:
        """Absolute weekly swing of a provider's Jaccard series: the range
        of its day-of-week group means.  Unlike
        :meth:`periodicity_strength` this is not normalized by total
        variance, so a static list whose only variation is the reference's
        weekly rhythm scores low, while Umbrella's enterprise-driven
        swings score high (Figure 3)."""
        series = self.series[provider]
        values = series.jaccard
        days = series.days
        means = [
            values[(days % 7) == k].mean()
            for k in range(7)
            if ((days % 7) == k).any()
        ]
        return float(max(means) - min(means))

    def trend_delta(self, provider: str, split_day: int) -> Tuple[float, float]:
        """Mean (jaccard, spearman) after ``split_day`` minus before — the
        late-February Alexa improvement detector."""
        series = self.series[provider]
        before = series.days < split_day
        after = ~before
        if not before.any() or not after.any():
            return float("nan"), float("nan")

        def _mean(values: np.ndarray) -> float:
            finite = values[~np.isnan(values)]
            return float(finite.mean()) if len(finite) else float("nan")

        jj_delta = _mean(series.jaccard[after]) - _mean(series.jaccard[before])
        rho_delta = _mean(series.spearman[after]) - _mean(series.spearman[before])
        return jj_delta, rho_delta
