"""Text rendering of the paper's tables and figures.

The benches print the same rows/series the paper reports; this module
holds the shared renderers: aligned tables, value-shaded heatmaps (the
Figure 1/2/6 style), and the Figure 5 movement flows.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "format_table",
    "format_heatmap",
    "format_series",
    "format_movement",
]

#: Shading ramp for text heatmaps, light to dark.
_SHADES = " .:-=+*#%@"


def _fmt(value: object, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    precision: int = 2,
) -> str:
    """Render an aligned text table.

    Floats are fixed-precision; ``None``/nan render as ``-``.
    """
    rendered = [[_fmt(cell, precision) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.rjust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_heatmap(
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    values: Mapping[Tuple[str, str], float],
    title: Optional[str] = None,
    precision: int = 2,
    lo: float = 0.0,
    hi: float = 1.0,
) -> str:
    """Render a labelled heatmap with numeric cells plus a shade glyph.

    Args:
        row_labels, col_labels: axis labels.
        values: mapping from (row, col) to value; missing cells render
          as ``-``.
        lo, hi: shading range.
    """
    span = hi - lo if hi > lo else 1.0

    def cell(row: str, col: str) -> str:
        value = values.get((row, col))
        if value is None or (isinstance(value, float) and math.isnan(value)):
            return "-".rjust(precision + 3)
        shade_idx = int(np.clip((value - lo) / span, 0, 0.999) * len(_SHADES))
        return f"{value:.{precision}f}{_SHADES[shade_idx]}"

    width = max([len(c) for c in col_labels] + [precision + 4])
    label_width = max(len(r) for r in row_labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" " * label_width + " " + " ".join(c.rjust(width) for c in col_labels))
    for row in row_labels:
        cells = " ".join(cell(row, col).rjust(width) for col in col_labels)
        lines.append(row.ljust(label_width) + " " + cells)
    return "\n".join(lines)


def format_series(
    name: str,
    values: Sequence[float],
    lo: Optional[float] = None,
    hi: Optional[float] = None,
    width_label: int = 10,
) -> str:
    """Render one time series as an inline spark-bar with min/max."""
    finite = [v for v in values if not math.isnan(v)]
    if not finite:
        return f"{name.ljust(width_label)} (no data)"
    lo = min(finite) if lo is None else lo
    hi = max(finite) if hi is None else hi
    span = hi - lo if hi > lo else 1.0
    bars = "".join(
        "-" if math.isnan(v) else _SHADES[int(np.clip((v - lo) / span, 0, 0.999) * len(_SHADES))]
        for v in values
    )
    return f"{name.ljust(width_label)} [{bars}] min={min(finite):.3f} max={max(finite):.3f}"


def format_movement(
    labels: Sequence[str],
    counts: np.ndarray,
    provider: str,
) -> str:
    """Render a Figure 5 movement matrix as textual flows.

    Args:
        labels: bucket labels (smallest first).
        counts: ``[n+1, n+1]`` matrix, rows = Cloudflare buckets, columns
          = list buckets, last index = absent.
        provider: evaluated list name.
    """
    n = len(labels)
    all_labels = list(labels) + ["absent"]
    lines = [f"Rank-magnitude movement: Cloudflare -> {provider}"]
    header = "cf\\list".ljust(9) + " ".join(label.rjust(8) for label in all_labels)
    lines.append(header)
    for i in range(n + 1):
        row_cells = " ".join(f"{int(counts[i, j]):8d}" for j in range(n + 1))
        lines.append(all_labels[i].ljust(9) + row_cells)
    return "\n".join(lines)
