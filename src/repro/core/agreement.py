"""Cross-list agreement (the Section 2 context: lists barely agree).

Scheitle et al. showed the commercial top lists have "little agreement
between top lists in terms of both overlap and rank order" — the
observation that motivates asking which of them is *right*, i.e. this
paper.  This module computes the pairwise agreement structure among our
simulated lists so the reproduction can show the same fractured landscape
before resolving it against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.normalize import normalize_list
from repro.core.similarity import jaccard_index, rank_correlation_of_lists
from repro.providers.base import TopListProvider
from repro.worldgen.world import World

__all__ = ["AgreementMatrix", "pairwise_list_agreement"]


@dataclass
class AgreementMatrix:
    """Pairwise agreement between named top lists.

    Attributes:
        names: list names in matrix order.
        jaccard: ``{(a, b): value}`` symmetric overlap at the depth used.
        spearman: ``{(a, b): value}`` intersection rank correlation (nan
          where undefined, e.g. pairs involving a bucketed list).
        depth: comparison depth.
    """

    names: Tuple[str, ...]
    jaccard: Dict[Tuple[str, str], float]
    spearman: Dict[Tuple[str, str], float]
    depth: int

    def mean_offdiagonal_jaccard(self) -> float:
        """Average overlap across distinct pairs — the headline number."""
        values = [v for (a, b), v in self.jaccard.items() if a != b]
        return float(np.mean(values)) if values else float("nan")

    def most_similar_pair(self) -> Tuple[str, str]:
        """The distinct pair with the highest overlap."""
        pairs = [(pair, v) for pair, v in self.jaccard.items() if pair[0] != pair[1]]
        return max(pairs, key=lambda item: item[1])[0]

    def least_similar_pair(self) -> Tuple[str, str]:
        """The distinct pair with the lowest overlap."""
        pairs = [(pair, v) for pair, v in self.jaccard.items() if pair[0] != pair[1]]
        return min(pairs, key=lambda item: item[1])[0]


def pairwise_list_agreement(
    world: World,
    providers: Dict[str, TopListProvider],
    depth: int,
    day: int = 0,
    names: Optional[Sequence[str]] = None,
) -> AgreementMatrix:
    """Compute the pairwise agreement matrix among top lists.

    Lists are normalized to domains first, then truncated to ``depth``
    (by original rank), so FQDN- and origin-granular lists are compared
    fairly.  Spearman is reported as nan for pairs involving a bucketed
    list, as in the paper's treatment of CrUX.
    """
    selected = tuple(names) if names is not None else tuple(providers)
    slices: Dict[str, np.ndarray] = {}
    bucketed: Dict[str, bool] = {}
    for name in selected:
        normalized = normalize_list(world, providers[name].daily_list(day))
        slices[name] = normalized.top_sites(depth)
        bucketed[name] = normalized.is_bucketed

    jaccard: Dict[Tuple[str, str], float] = {}
    spearman: Dict[Tuple[str, str], float] = {}
    for i, a in enumerate(selected):
        jaccard[(a, a)] = 1.0
        spearman[(a, a)] = 1.0
        for b in selected[i + 1 :]:
            jj = jaccard_index(slices[a], slices[b])
            if bucketed[a] or bucketed[b]:
                rho = float("nan")
            else:
                rho = rank_correlation_of_lists(slices[a], slices[b]).rho
            jaccard[(a, b)] = jaccard[(b, a)] = jj
            spearman[(a, b)] = spearman[(b, a)] = rho
    return AgreementMatrix(
        names=selected, jaccard=jaccard, spearman=spearman, depth=depth
    )
