"""List recommendation: the paper's Section 7 guidance, computed.

The paper closes with advice — use CrUX when a study needs an unordered
set of popular sites; Umbrella is the best alternative but do not trust
its ranks; beware category exclusions.  This module scores every list for
a concrete study profile against the measured evaluation, so the advice is
derived rather than asserted.  ``examples/choose_a_list.py`` is a thin
wrapper around it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cdn.filters import FINAL_SEVEN
from repro.core.evaluation import CloudflareEvaluator
from repro.core.normalize import normalize_list
from repro.core.regression import category_inclusion_odds
from repro.providers.base import TopListProvider
from repro.weblib.categories import CATEGORIES
from repro.worldgen.world import World

__all__ = ["StudyProfile", "ListScore", "recommend_lists"]

_CATEGORY_NAMES = {c.name for c in CATEGORIES}


@dataclass(frozen=True)
class StudyProfile:
    """What a research study needs from a top list.

    Attributes:
        needs_ranks: whether individual site ranks enter the analysis
          (85% of surveyed papers: no).
        magnitude: the rank-magnitude slice studied.
        must_cover: categories the study cannot afford to under-sample.
        rank_weight: how much rank accuracy matters when needed (0-1).
    """

    needs_ranks: bool = False
    magnitude: int = 1000
    must_cover: Sequence[str] = ()
    rank_weight: float = 0.5

    def __post_init__(self) -> None:
        unknown = set(self.must_cover) - _CATEGORY_NAMES
        if unknown:
            raise ValueError(f"unknown categories: {sorted(unknown)}")
        if not 0.0 <= self.rank_weight <= 1.0:
            raise ValueError("rank_weight must be in [0, 1]")


@dataclass
class ListScore:
    """One list's suitability for a study profile.

    Attributes:
        provider: list name.
        score: overall suitability (higher is better; negative means
          structurally unusable, e.g. a bucketed list for a rank study).
        set_quality: mean Jaccard across the final seven metrics.
        rank_quality: mean Spearman (nan for bucketed lists).
        coverage_penalties: categories from ``must_cover`` the list
          under-includes, with their odds ratios.
    """

    provider: str
    score: float
    set_quality: float
    rank_quality: float
    coverage_penalties: Dict[str, float]

    @property
    def usable(self) -> bool:
        """Whether the list can serve the study at all."""
        return self.score >= 0.0


def recommend_lists(
    world: World,
    evaluator: CloudflareEvaluator,
    providers: Dict[str, TopListProvider],
    profile: StudyProfile,
    days: Optional[Sequence[int]] = None,
) -> List[ListScore]:
    """Score all providers for a study profile, best first.

    Category coverage uses the Table 3 odds-ratio machinery over the
    Cloudflare top half; an odds ratio below 0.5 for a required category
    halves the list's score.
    """
    day_list = list(days) if days is not None else [0, world.config.n_days // 2]
    engine = evaluator.engine
    universe = engine.top(0, "all:requests", engine.n_cf_sites // 2)

    scores: List[ListScore] = []
    for name, provider in providers.items():
        results = [
            evaluator.evaluate_month(provider, combo, profile.magnitude, days=day_list)
            for combo in FINAL_SEVEN
        ]
        set_quality = float(np.mean([r.jaccard for r in results]))
        rho_values = [r.spearman for r in results if not np.isnan(r.spearman)]
        rank_quality = float(np.mean(rho_values)) if rho_values else float("nan")

        if profile.needs_ranks and np.isnan(rank_quality):
            score = -1.0
        elif profile.needs_ranks:
            w = profile.rank_weight
            score = (1 - w) * set_quality + w * rank_quality
        else:
            score = set_quality

        penalties: Dict[str, float] = {}
        if profile.must_cover and score >= 0:
            normalized = normalize_list(world, provider.daily_list(day_list[0]))
            odds = category_inclusion_odds(world, universe, normalized)
            for category in profile.must_cover:
                cell = odds[category]
                if np.isfinite(cell.odds_ratio) and cell.odds_ratio < 0.5:
                    penalties[category] = cell.odds_ratio
                    score *= 0.5
        scores.append(
            ListScore(
                provider=name,
                score=score,
                set_quality=set_quality,
                rank_quality=rank_quality,
                coverage_penalties=penalties,
            )
        )
    scores.sort(key=lambda s: s.score, reverse=True)
    return scores
