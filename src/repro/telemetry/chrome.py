"""Chrome telemetry: the panel behind CrUX and the Section 6 analyses.

Chrome's data comes from users who opted into history sync with usage
statistics enabled.  Per the CrUX methodology, aggregation excludes
non-public domains (not hyperlinked from public pages / disallowed by
robots.txt) and, on Android, covers only browser and Custom-Tab/WebAPK
traffic — most native-app usage is invisible.

Three metrics are modelled (Figure 6):

* ``completed`` — completed pageloads (First Contentful Paint); the metric
  behind the public CrUX ranking;
* ``initiated`` — initiated pageloads (completed / completion-rate);
* ``time`` — total time on site (completed x mean dwell).

Each can be produced per (country, platform) pair, which is exactly the
shape of the private data the Chrome team provided to the paper's authors.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.traffic.fastpath import TrafficModel
from repro.worldgen.world import World
from repro.worldgen.zipf import sample_counts

__all__ = ["ChromeTelemetry", "TELEMETRY_METRICS"]

#: The three Chrome client metrics of Figure 6.
TELEMETRY_METRICS: Tuple[str, ...] = ("completed", "initiated", "time")

#: Fraction of Android browsing visible to Chrome telemetry (browser +
#: Custom Tabs + WebAPKs; native apps excluded).
_ANDROID_COVERAGE = 0.55

#: Per-day observation fraction: panel pageloads / total Chrome pageloads.
_PANEL_SAMPLING = 0.25


class ChromeTelemetry:
    """Simulated Chrome telemetry aggregation.

    Args:
        world: the simulated world.
        traffic: shared traffic model (built if absent).
    """

    def __init__(self, world: World, traffic: Optional[TrafficModel] = None) -> None:
        self._world = world
        self._traffic = traffic if traffic is not None else TrafficModel(world)
        self._day_cache: Dict[Tuple[int, int], np.ndarray] = {}
        # Chrome's panel is large and close to representative, but sync
        # opt-in still selects a population; the residual taste skew is
        # small compared to other vantage points.
        bias_rng = world.day_rng("chrome", 99_991)
        self._panel_taste = bias_rng.lognormal(0.0, 0.55, size=world.n_sites)

    @property
    def world(self) -> World:
        """The simulated world."""
        return self._world

    @property
    def traffic(self) -> TrafficModel:
        """The shared traffic model."""
        return self._traffic

    def _visibility(self) -> np.ndarray:
        """Per-site probability that a pageload is telemetry-eligible."""
        sites = self._world.sites
        eligible = sites.robots_public.astype(np.float64)
        # Private-window browsing never syncs.
        return eligible * (1.0 - sites.private_rate) * self._panel_taste

    def panel_pageloads(self, day: int, country: int, platform: int) -> np.ndarray:
        """Expected panel-observed *completed* pageloads per site.

        Args:
            day: simulated day.
            country: country index.
            platform: 0 = Windows desktop, 1 = Android mobile.
        """
        key = (day, country * 2 + platform)
        cached = self._day_cache.get(key)
        if cached is not None:
            return cached

        world = self._world
        sites = world.sites
        platform_loads = self._traffic.platform_country_pageloads(day, platform)
        loads = platform_loads[:, country]
        chrome_share = world.clients.chrome_share[country]
        coverage = _ANDROID_COVERAGE if platform == 1 else 1.0
        expected = (
            loads
            * chrome_share
            * coverage
            * _PANEL_SAMPLING
            * self._visibility()
            * sites.completion_rate
        )
        self._day_cache[key] = expected
        return expected

    def metric_counts(
        self,
        metric: str,
        country: int,
        platform: int,
        days: Optional[range] = None,
        with_noise: bool = True,
    ) -> np.ndarray:
        """Aggregated per-site metric for one (country, platform) pair.

        Args:
            metric: one of :data:`TELEMETRY_METRICS`.
            country: country index.
            platform: platform index.
            days: day range to aggregate (default: the whole window —
              CrUX-style monthly aggregation).
            with_noise: apply counting statistics.

        Raises:
            KeyError: for unknown metric names.
        """
        if metric not in TELEMETRY_METRICS:
            raise KeyError(f"unknown telemetry metric: {metric!r}")
        world = self._world
        sites = world.sites
        if days is None:
            days = range(world.config.n_days)

        total = np.zeros(world.n_sites)
        for day in days:
            total += self.panel_pageloads(day, country, platform)

        if metric == "initiated":
            total = total / sites.completion_rate
        elif metric == "time":
            total = total * sites.dwell_seconds

        if with_noise:
            rng = world.day_rng("chrome", country * 64 + platform * 32 + 1)
            if metric == "time":
                # Time is a continuous sum; jitter multiplicatively.
                total = total * rng.lognormal(0.0, 0.03, size=len(total))
            else:
                total = sample_counts(rng, total)
        return total

    def ranking(
        self,
        metric: str,
        country: int,
        platform: int,
        days: Optional[range] = None,
        min_count: float = 1.0,
    ) -> np.ndarray:
        """Site indices ranked by a telemetry metric, best first.

        Sites below ``min_count`` observations are invisible to the panel
        and excluded, mirroring CrUX's privacy thresholding.
        """
        counts = self.metric_counts(metric, country, platform, days=days)
        visible = np.flatnonzero(counts >= min_count)
        order = np.argsort(-counts[visible], kind="stable")
        return visible[order]

    def global_completed_by_site(self, with_noise: bool = True) -> np.ndarray:
        """Monthly completed pageloads per site, summed over all
        (country, platform) pairs — the CrUX aggregation input."""
        world = self._world
        total = np.zeros(world.n_sites)
        for country in range(world.clients.n_countries):
            for platform in (0, 1):
                total += self.metric_counts(
                    "completed", country, platform, with_noise=False
                )
        if with_noise:
            rng = world.rng("chrome")
            total = sample_counts(rng, total)
        return total
