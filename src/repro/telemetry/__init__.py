"""Browser telemetry vantage points.

:mod:`repro.telemetry.chrome` models Chrome's client-side telemetry panel:
sync-opted-in users whose completed pageloads, initiated pageloads, and
time-on-site are aggregated per (country, platform).  The public CrUX list
(:mod:`repro.providers.crux_list`) and the private per-country data of the
paper's Section 6 are both derived from it.
"""

from repro.telemetry.chrome import ChromeTelemetry, TELEMETRY_METRICS

__all__ = ["ChromeTelemetry", "TELEMETRY_METRICS"]
