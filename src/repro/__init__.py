"""repro — a reproduction of "Toppling Top Lists" (IMC 2022).

The package rebuilds the paper's entire measurement stack over a synthetic
web ecosystem: ground-truth popularity, a Cloudflare-style CDN vantage
point with the paper's 21 filter-aggregation metrics, Chrome telemetry,
DNS resolvers, and simulators for all seven top lists (Alexa, Umbrella,
Majestic, Secrank, Tranco, Trexa, CrUX), plus the analysis layer that
reproduces every table and figure.

Quickstart::

    from repro import experiment_context

    ctx = experiment_context()              # build the default world
    crux = ctx.providers["crux"]
    result = ctx.evaluator.evaluate_month(
        crux, combo="all:requests", magnitude=ctx.magnitudes[2]
    )
    print(result.jaccard)

See README.md for the architecture overview and DESIGN.md for the paper
mapping.
"""

from repro.cdn.filters import ALL_COMBINATIONS, FINAL_SEVEN
from repro.cdn.metrics import CdnMetricEngine
from repro.core.evaluation import CloudflareEvaluator, DayEvaluation, MonthEvaluation
from repro.core.normalize import NormalizedList, normalize_list, normalize_strings
from repro.core.pipeline import BENCH_CONFIG, ExperimentContext, experiment_context
from repro.core.similarity import jaccard_index, rank_correlation_of_lists, spearman
from repro.providers.registry import PROVIDER_ORDER, build_providers
from repro.telemetry.chrome import ChromeTelemetry
from repro.traffic.fastpath import TrafficModel
from repro.worldgen.config import WorldConfig
from repro.worldgen.world import World, build_world

__version__ = "1.0.0"

__all__ = [
    "ALL_COMBINATIONS",
    "BENCH_CONFIG",
    "CdnMetricEngine",
    "ChromeTelemetry",
    "CloudflareEvaluator",
    "DayEvaluation",
    "ExperimentContext",
    "FINAL_SEVEN",
    "MonthEvaluation",
    "NormalizedList",
    "PROVIDER_ORDER",
    "TrafficModel",
    "World",
    "WorldConfig",
    "__version__",
    "build_providers",
    "build_world",
    "experiment_context",
    "jaccard_index",
    "normalize_list",
    "normalize_strings",
    "rank_correlation_of_lists",
    "spearman",
]
