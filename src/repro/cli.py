"""Command-line interface.

Command families, all dispatched through one table in :func:`main`:

* experiments — ``repro fig2``, ``repro table1``, ``repro all``: reproduce
  the paper's tables and figures.  Expensive artifacts (world, traffic
  tensors, CDN metrics, provider lists) persist in a content-addressed
  cache, so a cold run builds the world once and every later invocation
  hydrates it from disk; ``--jobs N`` runs experiments in parallel with
  per-experiment failure isolation and a JSON run manifest.  ``--trace``
  prints a per-experiment span tree (stage timings plus store hit/miss
  counters); ``--trace-out PATH`` also writes Chrome trace-event JSON.
* ``repro bench [--quick]`` — write the canonical ``BENCH_<yyyymmdd>.json``
  performance baseline: per-stage wall times, cache-cold vs cache-warm
  timings, and requests-simulated/sec per experiment.
* ``repro cache stats|ls|clear`` — inspect or empty the artifact store
  (``ls --quarantined`` lists blobs that failed checksum verification).
* ``repro export <provider> <path>`` — write a simulated list as a
  Tranco-style rank CSV (or CrUX-style origin CSV for bucketed lists).
* ``repro recommend`` — score every list for a study profile, per the
  paper's Section 7 guidance.
* ``repro ranking [--k N] [--json PATH]`` — the continuous ranking
  pipeline: stream every day through the rolling Dowdall window, prove
  byte-identity against the batch recompute (nonzero exit on any
  drift), and print Scheitle-style stability analytics (daily churn,
  intersection decay, weekday periodicity) for the top-k
  (``repro.ranking``).
* ``repro verify-goldens [--update]`` / ``repro verify-invariants`` — the
  regression gate: recompute every experiment's structured rows and diff
  them against the checked-in goldens (``tests/golden/``), and check the
  metamorphic invariant registry (``repro.qa``).
* ``repro chaos [--seed N] [--plan plan.json]`` — the robustness gate: run
  the registry under a deterministic fault-injection plan (corrupt reads,
  disk-full writes, worker crashes and hangs) and require every experiment
  to finish golden-clean anyway (``repro.faults``).
* ``repro serve [--port N] [--jobs N] [--deadline-ms N]`` — the resilient
  metrics service: precomputed results over HTTP with per-request
  deadlines, bounded-queue load shedding (503 + ``Retry-After``), a
  circuit breaker around store reads (last-known-good fallback), and
  graceful drain on SIGTERM.  ``--fault-plan plan.json`` injects faults
  under live traffic; ``--selftest`` replays a deterministic chaos mix
  against a live instance and asserts availability (``repro.serve``).
* ``repro loadgen [--spawn | --base-url URL]`` — the load harness: seeded
  client personas (dashboard pollers, researchers, health probes) driven
  open-loop (``--rate``) or closed-loop (``--closed-loop N``) against the
  metrics service, with golden-body drift detection, a mergeable latency
  histogram, and an ``--slo`` gate over the ``LOADGEN_<yyyymmdd>.json``
  report.  ``--spawn`` forks a chaos-armed ``repro serve`` child and
  requires saturation sheds + >= 99% golden-correct availability.
  ``--workers N`` fans the client across N processes over disjoint
  persona shards; every run writes a ``LATENCY_<yyyymmdd>.json``
  trajectory, and ``--compare prev.json`` fails the run on p99 drift
  (``repro.loadgen``).
* ``repro netproxy --listen PORT --upstream HOST:PORT`` — the
  deterministic TCP chaos proxy: seeded per-connection transport faults
  (resets, stalls, garbled/truncated/split writes, mid-response closes)
  between any client and any upstream, with a fault-fire accounting log
  (``repro.faults.netproxy``).
* ``repro chaos-net [--quick] [--seed N]`` — the transport-resilience
  gate: scripted loadgen → netproxy → chaos-armed serve child; every
  armed ``net.*`` site must fire, availability must hold >= 99% with
  zero golden drift, and the fault-sequence digest must replay
  (``repro.loadgen.netchaos``).
* ``repro chaos-data [--quick] [--seed N]`` — the degraded-data gate:
  an in-process proof that gap-tolerant rolling ranks stay bit-identical
  to the batch recompute under an armed data-fault plan, then a scripted
  client mix against a data-chaos serve child; every armed ``data.*``
  site must fire, every degraded day must be marked in ``data_health``,
  and both fault digests must replay (``repro.loadgen.datachaos``).

Exit codes are uniform across every command: 0 on success, 1 on
experiment failure / golden drift / invariant violation, 2 on usage
errors (argparse errors included — :func:`main` converts ``SystemExit``
into a return value, so embedding callers never see an exception).

Examples::

    repro list                      # available experiments (with tags)
    repro fig2 --trace              # top lists vs Cloudflare, with spans
    repro all --jobs 4              # the whole paper, in parallel
    repro table1 --sites 40000      # coverage table, larger scale
    repro bench --quick --jobs 2    # CI-scale performance baseline
    repro cache stats               # what the artifact store holds
    repro export umbrella /tmp/umbrella.csv --limit 1000
    repro recommend --need-ranks --magnitude 10K
    repro verify-goldens --jobs 4     # regression-check every experiment
    repro verify-goldens --update     # regenerate the golden snapshots
    repro verify-invariants           # metamorphic pipeline properties
    repro all --jobs 4 --timeout 300  # per-experiment deadlines
    repro all --resume run.json       # re-run only what isn't done yet
    repro chaos --seed 1337           # full registry under fault injection
    repro all --quick && repro serve --quick   # serve golden-scale results
    repro serve --selftest --quick    # resilience selftest (chaos + drain)
    repro loadgen --spawn --quick --seed 7     # chaos + saturation smoke
    repro loadgen --base-url http://127.0.0.1:8321 --rate 50 \\
        --slo p99_ms=250,error_rate=0.01      # SLO-gate a live instance
    repro loadgen --spawn --workers 4         # multi-process client pool
    repro loadgen --compare LATENCY_prev.json --against LATENCY_now.json
    repro chaos-net --quick --seed 7          # transport-resilience gate
    repro chaos-data --quick --seed 11        # degraded-data gate
    repro ranking --fault-seed 11 --days 12   # degraded equivalence proof
    repro netproxy --listen 9000 --upstream 127.0.0.1:8321 --seed 7
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.experiments import SPECS
from repro.core.pipeline import BENCH_CONFIG, ExperimentContext, experiment_context
from repro.store import ArtifactStore, default_cache_dir
from repro.worldgen.config import WorldConfig

__all__ = ["main", "build_parser", "EXIT_OK", "EXIT_FAILURE", "EXIT_USAGE"]

#: Uniform process exit codes (see the module docstring).
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2


def _default_max_bytes() -> Optional[int]:
    env = os.environ.get("REPRO_CACHE_MAX_BYTES")
    if env is None:
        from repro.store import DEFAULT_MAX_BYTES

        return DEFAULT_MAX_BYTES
    value = int(env)
    return None if value <= 0 else value


# ---------------------------------------------------------------------------
# Shared parent parsers (argparse ``parents=``): every subcommand takes the
# same world and cache arguments, declared exactly once.


def _world_parent(defaults: WorldConfig) -> argparse.ArgumentParser:
    """``--sites/--days/--seed``, defaulting to ``defaults`` via
    :meth:`WorldConfig.from_args` (unset arguments stay None so the base
    config decides)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--sites", type=int, default=None, metavar="N",
        help=f"site universe size (default {defaults.n_sites})",
    )
    parent.add_argument(
        "--days", type=int, default=None, metavar="N",
        help=f"simulated days (default {defaults.n_days})",
    )
    parent.add_argument(
        "--seed", type=int, default=None,
        help=f"world seed (default {defaults.seed})",
    )
    return parent


def _cache_parent() -> argparse.ArgumentParser:
    """``--cache-dir/--no-cache``, shared by every store-touching command."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="artifact store root (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro-toplists)",
    )
    parent.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent artifact store for this run",
    )
    return parent


def _cache_dir_from_args(args: argparse.Namespace) -> Optional[str]:
    if args.no_cache:
        return None
    return args.cache_dir if args.cache_dir else str(default_cache_dir())


def _store_from_args(args: argparse.Namespace) -> Optional[ArtifactStore]:
    cache_dir = _cache_dir_from_args(args)
    if cache_dir is None:
        return None
    return ArtifactStore(cache_dir, _default_max_bytes())


def build_parser() -> argparse.ArgumentParser:
    """The experiment-mode argument parser (kept for API stability)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables and figures from 'Toppling Top Lists' (IMC 2022).",
        parents=[_world_parent(BENCH_CONFIG), _cache_parent()],
    )
    parser.add_argument(
        "experiment",
        help="experiment id (fig1..fig8, table1..table3, survey), 'all', or 'list'",
    )
    parser.add_argument(
        "--svg-dir", default=None, metavar="DIR",
        help="also render the figures as SVG files into DIR "
             "(forces in-process execution)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for running experiments (default 1)",
    )
    parser.add_argument(
        "--manifest", default=None, metavar="PATH",
        help="write the JSON run manifest here (default: <cache>/runs/)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="print a per-experiment span tree: stage wall times, rows "
             "simulated, store hit/miss counters",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write Chrome trace-event JSON (load in chrome://tracing or "
             "Perfetto); implies tracing",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-experiment deadline: each experiment runs in its own "
             "supervised worker, hung or crashed workers are killed and "
             "resubmitted once (incompatible with --svg-dir)",
    )
    parser.add_argument(
        "--resume", default=None, metavar="MANIFEST",
        help="resume from a prior run manifest: skip experiments it marks "
             "ok whose cached result blob still verifies",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="run at golden scale (the CI smoke configuration) — the same "
             "config `repro serve --quick` reads back",
    )
    return parser


def _build_export_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro export",
        description="Export a simulated top list as CSV.",
        parents=[_world_parent(BENCH_CONFIG), _cache_parent()],
    )
    parser.add_argument("provider", help="provider name (alexa, umbrella, crux...)")
    parser.add_argument("path", help="output CSV path")
    parser.add_argument("--day", type=int, default=0, help="snapshot day (default 0)")
    parser.add_argument("--limit", type=int, default=None, help="max rows")
    return parser


def _build_recommend_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro recommend",
        description="Score every top list for a study profile (Section 7).",
        parents=[_world_parent(BENCH_CONFIG), _cache_parent()],
    )
    parser.add_argument("--need-ranks", action="store_true",
                        help="the study uses individual site ranks")
    parser.add_argument("--magnitude", default="100K",
                        choices=["1K", "10K", "100K", "1M"])
    parser.add_argument("--must-cover", action="append", default=[],
                        metavar="CATEGORY",
                        help="category the study cannot under-sample (repeatable)")
    return parser


def _context_from_args(
    args: argparse.Namespace, base: WorldConfig = BENCH_CONFIG
) -> ExperimentContext:
    config = WorldConfig.from_args(args, base=base)
    started = time.perf_counter()
    ctx = experiment_context(config=config, store=_store_from_args(args))
    print(
        f"[world: {config.n_sites} sites, {config.n_days} days, seed {config.seed}; "
        f"ready in {time.perf_counter() - started:.1f}s]\n"
    )
    return ctx


def _run_export(argv: List[str]) -> int:
    from repro.core.datasets import write_crux_csv, write_rank_csv

    args = _build_export_parser().parse_args(argv)
    ctx = _context_from_args(args)
    provider = ctx.providers.get(args.provider)
    if provider is None:
        print(f"unknown provider: {args.provider}; choose from "
              f"{', '.join(ctx.providers)}", file=sys.stderr)
        return EXIT_USAGE
    ranked = provider.daily_list(args.day)
    if ranked.is_bucketed:
        rows = write_crux_csv(ctx.world, ranked, args.path)
        print(f"wrote {rows} origin rows (CrUX format) to {args.path}")
    else:
        rows = write_rank_csv(ctx.world, ranked, args.path, limit=args.limit)
        print(f"wrote {rows} rank rows to {args.path}")
    return EXIT_OK


def _run_recommend(argv: List[str]) -> int:
    from repro.core.recommend import StudyProfile, recommend_lists

    args = _build_recommend_parser().parse_args(argv)
    ctx = _context_from_args(args)
    magnitude = dict(zip(ctx.magnitude_labels, ctx.magnitudes))[args.magnitude]
    try:
        profile = StudyProfile(
            needs_ranks=args.need_ranks,
            magnitude=magnitude,
            must_cover=tuple(args.must_cover),
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return EXIT_USAGE
    scores = recommend_lists(ctx.world, ctx.evaluator, ctx.providers, profile)
    print(f"{'list':10s} {'score':>8s} {'set':>6s} {'rank':>6s}  notes")
    for score in scores:
        rank_text = "-" if np.isnan(score.rank_quality) else f"{score.rank_quality:.3f}"
        display = "excluded" if not score.usable else f"{score.score:.3f}"
        notes = ", ".join(
            f"under-includes {cat} (OR={ratio:.2f})"
            for cat, ratio in score.coverage_penalties.items()
        )
        print(f"{score.provider:10s} {display:>8s} {score.set_quality:6.3f} "
              f"{rank_text:>6s}  {notes}")
    print(f"\nrecommendation: {scores[0].provider}")
    return EXIT_OK


def _build_ranking_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro ranking",
        description="Continuous ranking pipeline: fold each day into the "
                    "rolling Dowdall window, prove bit-identity with the "
                    "batch recompute, and report stability analytics.",
        parents=[_world_parent(BENCH_CONFIG), _cache_parent()],
    )
    parser.add_argument("--k", type=int, default=100, metavar="N",
                        help="top-k horizon for snapshots and stability "
                             "metrics (default 100)")
    parser.add_argument("--start-weekday", type=int, default=0,
                        choices=range(7), metavar="0-6",
                        help="weekday of day 0 (0=Monday) for the "
                             "periodicity buckets (default 0)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the equivalence report and "
                             "stability summary as JSON")
    parser.add_argument("--fault-plan", default=None, metavar="PATH",
                        help="also run the degraded-ingestion equivalence "
                             "proof under the data-fault plan in this JSON "
                             "file")
    parser.add_argument("--fault-seed", type=int, default=None, metavar="N",
                        help="also run the degraded proof under the "
                             "built-in data plan with this seed "
                             "(ignored when --fault-plan is given)")
    return parser


def _run_ranking(argv: List[str]) -> int:
    from repro.ranking import (
        ContinuousTranco,
        StabilityTracker,
        proof_of_equivalence,
    )

    args = _build_ranking_parser().parse_args(argv)
    if args.k < 1:
        print(f"--k must be >= 1, got {args.k}", file=sys.stderr)
        return EXIT_USAGE
    ctx = _context_from_args(args)
    # Unwrap the store-backed caching layer: the incremental pipeline
    # needs the real TrancoProvider's component surface.
    tranco = ctx.providers["tranco"]
    tranco = getattr(tranco, "inner", tranco)

    report = proof_of_equivalence(tranco, k=args.k)
    verdict = "identical" if report["identical"] else "MISMATCH"
    print(f"[tranco incremental vs batch: {report['days_checked']} day(s), "
          f"window {report['window']}: {verdict}]")
    for entry in report["days"]:
        marker = "ok" if entry["snapshot_identical"] else "DRIFT"
        print(f"  day {entry['day']}: snapshot "
              f"{entry['incremental_sha256'][:12]} "
              f"{marker}" + (
                  f" (batch {entry['batch_sha256'][:12]})"
                  if not entry["snapshot_identical"] else ""
              ))

    tracker = StabilityTracker(args.k)
    for ranked in ContinuousTranco(tranco).lists():
        tracker.observe(ranked.head(args.k).strings(ctx.world))
    summary = tracker.summary(start_weekday=args.start_weekday)
    ratio = summary["weekday"]["weekend_weekday_ratio"]
    print(f"[stability @ k={args.k}: mean churn {summary['mean_churn']:.4f}, "
          f"min intersection {summary['min_intersection']:.4f}, "
          f"weekend/weekday churn "
          f"{'n/a' if ratio is None else format(ratio, '.3f')}]")

    degraded_report = None
    if args.fault_plan is not None or args.fault_seed is not None:
        from repro.faults.plan import FaultPlan, default_data_plan
        from repro.ranking import proof_of_degraded_equivalence

        try:
            if args.fault_plan is not None:
                with open(args.fault_plan, "r", encoding="utf-8") as handle:
                    plan = FaultPlan.from_dict(json.load(handle))
            else:
                plan = default_data_plan(
                    args.fault_seed, ctx.world.config.n_days
                )
        except (OSError, json.JSONDecodeError, ValueError) as error:
            print(f"bad fault plan: {error}", file=sys.stderr)
            return EXIT_USAGE
        degraded_report = proof_of_degraded_equivalence(
            tranco, plan, k=args.k
        )
        verdict = "identical" if degraded_report["ok"] else "MISMATCH"
        fired = degraded_report["sites_fired"]
        print(f"[tranco degraded vs batch: "
              f"{degraded_report['days_checked']} day(s), "
              f"{len(degraded_report['degraded_days'])} degraded: {verdict}]")
        print("  fires: " + (
            ", ".join(f"{s}={n}" for s, n in sorted(fired.items())) or "none"
        ))
        print(f"  fault digest: {degraded_report['fault_digest']}"
              + ("" if degraded_report["digest_match"]
                 else " (REPLAY MISMATCH)"))

    if args.json:
        doc = {"equivalence": report, "stability": summary}
        if degraded_report is not None:
            doc["degraded_equivalence"] = degraded_report
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[report written to {args.json}]")
    ok = report["identical"] and (
        degraded_report is None or degraded_report["ok"]
    )
    return EXIT_OK if ok else EXIT_FAILURE


def _run_experiments(argv: List[str]) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "list":
        print("available experiments:")
        for spec in SPECS.values():
            tags = ",".join(spec.tags)
            line = f"  {spec.id:10s} {spec.summary}"
            print(line + (f"  [{tags}]" if tags else ""))
        print("\nother commands: bench, export, recommend, ranking, validate, "
              "summary, cache, verify-goldens, verify-invariants, chaos, "
              "serve, loadgen, netproxy, chaos-net, chaos-data")
        return EXIT_OK

    names = list(SPECS) if args.experiment == "all" else [args.experiment]
    unknown = [name for name in names if name not in SPECS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(SPECS)}, all, list, bench, export, "
              "recommend", file=sys.stderr)
        return EXIT_USAGE

    from repro.runner import run_experiments

    if args.quick:
        from repro.qa.goldens import GOLDEN_CONFIG

        base = GOLDEN_CONFIG
    else:
        base = BENCH_CONFIG
    config = WorldConfig.from_args(args, base=base)
    cache_dir = _cache_dir_from_args(args)
    jobs = max(1, args.jobs)
    trace = bool(args.trace or args.trace_out)
    if args.svg_dir and jobs > 1:
        print("[svg export runs in-process; ignoring --jobs]", file=sys.stderr)
        jobs = 1
    if args.svg_dir and args.timeout is not None:
        print("svg export runs in-process and cannot be supervised; "
              "drop --timeout or --svg-dir", file=sys.stderr)
        return EXIT_USAGE
    print(
        f"[world: {config.n_sites} sites, {config.n_days} days, seed {config.seed}; "
        f"jobs {jobs}; cache {'off' if cache_dir is None else cache_dir}]\n"
    )
    try:
        payloads, manifest, manifest_file = run_experiments(
            names,
            config,
            jobs=jobs,
            cache_dir=cache_dir,
            max_bytes=_default_max_bytes(),
            manifest_path=args.manifest,
            keep_results=bool(args.svg_dir),
            trace=trace,
            timeout=args.timeout,
            resume_manifest=args.resume,
        )
    except (ValueError, FileNotFoundError, json.JSONDecodeError) as error:
        # A bad --resume manifest (wrong config, missing, unparseable) is a
        # usage problem, not an experiment failure.
        print(str(error), file=sys.stderr)
        return EXIT_USAGE
    if trace:
        from repro.obs import Span, chrome_trace_events, render_span_tree

    for payload, outcome in zip(payloads, manifest.outcomes):
        if not outcome.ok:
            continue
        resumed = " [resumed]" if outcome.resumed else ""
        print(f"=== {outcome.name}: {payload.get('title', '')} "
              f"({outcome.seconds:.1f}s){resumed} ===")
        print(payload.get("text", ""))
        if args.svg_dir and "result" in payload:
            from repro.core.figure_export import export_figures

            for path in export_figures(payload["result"], args.svg_dir):
                print(f"[svg] {path}")
        if args.trace and isinstance(payload.get("trace"), dict):
            print(render_span_tree(Span.from_dict(payload["trace"])))
        print()
    for outcome in manifest.failures:
        print(f"[FAILED after {outcome.attempts} attempt(s)] {outcome.name}:",
              file=sys.stderr)
        print(outcome.error or "unknown error", file=sys.stderr)
    if args.trace_out:
        events: List[Dict[str, object]] = []
        for tid, payload in enumerate(payloads):
            trace_dict = payload.get("trace")
            if isinstance(trace_dict, dict):
                events.extend(
                    chrome_trace_events(Span.from_dict(trace_dict), pid=0, tid=tid)
                )
        target = Path(args.trace_out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps({"traceEvents": events}) + "\n")
        print(f"[trace: {target}]")
    totals = manifest.cache_totals()
    if totals:
        summary = ", ".join(
            f"{kind} {counts.get('hits', 0)}h/{counts.get('misses', 0)}m"
            for kind, counts in sorted(totals.items())
        )
        print(f"[cache: {summary}]")
    if manifest_file is not None:
        print(f"[manifest: {manifest_file}]")
    if manifest.interrupted and manifest_file is not None:
        print(f"[interrupted — resume with: repro all --resume {manifest_file}]",
              file=sys.stderr)
    return EXIT_FAILURE if manifest.failures else EXIT_OK


def _run_bench(argv: List[str]) -> int:
    from repro.obs.bench import QUICK_CONFIG, bench_path, run_bench, write_bench

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Write the canonical BENCH_<yyyymmdd>.json performance "
                    "baseline: cold/warm wall times, per-stage breakdowns, "
                    "requests simulated per second.",
        parents=[_world_parent(BENCH_CONFIG)],
    )
    parser.add_argument(
        "--quick", action="store_true",
        help=f"bench at golden scale ({QUICK_CONFIG.n_sites} sites, "
             f"{QUICK_CONFIG.n_days} days) — the CI smoke configuration",
    )
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default 1)")
    parser.add_argument("--experiment", action="append", default=[],
                        metavar="NAME",
                        help="bench only this experiment (repeatable; "
                             "default: the whole registry)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="output path (default: ./BENCH_<yyyymmdd>.json)")
    args = parser.parse_args(argv)

    names = args.experiment or None
    unknown = [name for name in (names or []) if name not in SPECS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return EXIT_USAGE
    base = QUICK_CONFIG if args.quick else BENCH_CONFIG
    config = WorldConfig.from_args(args, base=base)
    jobs = max(1, args.jobs)
    print(f"[bench: {config.n_sites} sites, {config.n_days} days, seed "
          f"{config.seed}; jobs {jobs}; cold + warm passes]\n")
    payload = run_bench(config, names=names, jobs=jobs, quick=args.quick)
    target = write_bench(payload, args.out if args.out else bench_path())

    experiments: Dict[str, Dict[str, object]] = payload["experiments"]  # type: ignore[assignment]
    for name, row in experiments.items():
        mark = "ok " if row["ok"] else "FAIL"
        print(f"[{mark}] {name:10s} cold {row['cold_seconds']:7.2f}s  "
              f"warm {row['warm_seconds']:7.2f}s  "
              f"{row['requests_per_sec']:,.0f} req/s")
    totals: Dict[str, object] = payload["totals"]  # type: ignore[assignment]
    print(f"\ntotal: cold {totals['cold_seconds']:.2f}s, "
          f"warm {totals['warm_seconds']:.2f}s "
          f"(store hits cold {totals['cold_store_hits']}, "
          f"warm {totals['warm_store_hits']})")
    print(f"[bench: {target}]")
    return EXIT_OK if all(row["ok"] for row in experiments.values()) else EXIT_FAILURE


def _run_verify_goldens(argv: List[str]) -> int:
    from repro.qa.goldens import GOLDEN_CONFIG, default_golden_dir, verify_goldens

    parser = argparse.ArgumentParser(
        prog="repro verify-goldens",
        description=(
            "Recompute every experiment at the pinned golden configuration "
            "and diff the structured results against tests/golden/."
        ),
        parents=[_world_parent(GOLDEN_CONFIG), _cache_parent()],
    )
    parser.add_argument("--update", action="store_true",
                        help="regenerate the golden snapshots instead of diffing")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default 1)")
    parser.add_argument("--golden-dir", default=None, metavar="DIR",
                        help="golden snapshot directory "
                             "(default: nearest tests/golden)")
    parser.add_argument("--experiment", action="append", default=[],
                        metavar="NAME",
                        help="verify only this experiment (repeatable)")
    parser.add_argument("--manifest", default=None, metavar="PATH",
                        help="write the JSON run manifest here")
    args = parser.parse_args(argv)

    names = args.experiment or None
    unknown = [name for name in (names or []) if name not in SPECS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return EXIT_USAGE
    config = WorldConfig.from_args(args, base=GOLDEN_CONFIG)
    golden_dir = args.golden_dir if args.golden_dir else default_golden_dir()
    cache_dir = _cache_dir_from_args(args)
    print(f"[goldens: {golden_dir}; world: {config.n_sites} sites, "
          f"{config.n_days} days, seed {config.seed}; jobs {max(1, args.jobs)}]\n")
    report = verify_goldens(
        golden_dir,
        names=names,
        config=config,
        jobs=max(1, args.jobs),
        update=args.update,
        cache_dir=cache_dir,
        max_bytes=_default_max_bytes(),
        manifest_path=args.manifest,
    )
    print(report.render())
    if report.manifest_file is not None:
        print(f"[manifest: {report.manifest_file}]")
    return EXIT_OK if report.ok else EXIT_FAILURE


def _run_verify_invariants(argv: List[str]) -> int:
    from repro.qa.goldens import GOLDEN_CONFIG
    from repro.qa.invariants import INVARIANTS, run_invariants

    parser = argparse.ArgumentParser(
        prog="repro verify-invariants",
        description="Check the metamorphic invariant registry over a world.",
        parents=[_world_parent(GOLDEN_CONFIG)],
    )
    parser.add_argument("--only", action="append", default=[], metavar="NAME",
                        help="run only this invariant (repeatable)")
    parser.add_argument("--list", action="store_true", dest="list_invariants",
                        help="list registered invariants and exit")
    args = parser.parse_args(argv)

    if args.list_invariants:
        for invariant in INVARIANTS:
            print(f"  {invariant.name:24s} {invariant.description}")
        return EXIT_OK
    known = {invariant.name for invariant in INVARIANTS}
    unknown = [name for name in args.only if name not in known]
    if unknown:
        print(f"unknown invariant(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(sorted(known))}", file=sys.stderr)
        return EXIT_USAGE
    config = WorldConfig.from_args(args, base=GOLDEN_CONFIG)
    started = time.perf_counter()
    ctx = experiment_context(config=config)
    print(f"[world: {config.n_sites} sites, {config.n_days} days, seed "
          f"{config.seed}; ready in {time.perf_counter() - started:.1f}s]\n")
    outcomes = run_invariants(ctx, names=args.only or None)
    failed = 0
    for outcome in outcomes:
        mark = "ok " if outcome.ok else "FAIL"
        print(f"[{mark}] {outcome.name} ({outcome.seconds:.2f}s)")
        for violation in outcome.violations:
            print(f"       {violation}")
        failed += 0 if outcome.ok else 1
    print(f"\n{len(outcomes) - failed}/{len(outcomes)} invariants hold")
    return EXIT_FAILURE if failed else EXIT_OK


def _run_validate(argv: List[str]) -> int:
    from repro.worldgen.validate import validate_world

    parser = argparse.ArgumentParser(
        prog="repro validate",
        description="Run the structural self-checks against a world.",
        parents=[_world_parent(BENCH_CONFIG), _cache_parent()],
    )
    args = parser.parse_args(argv)
    ctx = _context_from_args(args)
    results = validate_world(ctx.world)
    failed = 0
    for result in results:
        mark = "ok " if result.passed else "FAIL"
        print(f"[{mark}] {result.name}: {result.detail}")
        failed += 0 if result.passed else 1
    print(f"\n{len(results) - failed}/{len(results)} checks passed")
    return EXIT_FAILURE if failed else EXIT_OK


def _run_summary(argv: List[str]) -> int:
    from repro.worldgen.summary import summarize_world

    parser = argparse.ArgumentParser(
        prog="repro summary",
        description="Describe a generated world.",
        parents=[_world_parent(BENCH_CONFIG), _cache_parent()],
    )
    args = parser.parse_args(argv)
    ctx = _context_from_args(args)
    print(summarize_world(ctx.world))
    return EXIT_OK


def _format_bytes(size: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024
    return f"{size:.1f} GiB"


def _run_cache(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Inspect or clear the persistent artifact store.",
    )
    parser.add_argument("action", choices=["stats", "ls", "clear"],
                        help="what to do with the store")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="artifact store root (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro-toplists)",
    )
    parser.add_argument(
        "--quarantined", action="store_true",
        help="ls: list quarantined blobs (failed checksum verification) "
             "instead of live entries",
    )
    args = parser.parse_args(argv)
    root = args.cache_dir if args.cache_dir else str(default_cache_dir())
    store = ArtifactStore(root, _default_max_bytes())

    if args.action == "clear":
        freed = store.clear()
        print(f"cleared {root} ({_format_bytes(freed)} freed)")
        return EXIT_OK

    entries = store.quarantined() if args.quarantined else store.entries()
    if args.action == "ls":
        if not entries:
            what = "quarantine" if args.quarantined else "store"
            print(f"(empty {what} at {root})")
            return EXIT_OK
        for entry in entries:
            stamp = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(entry.mtime))
            print(f"{entry.size:>12d}  {stamp}  {entry.key}")
        return EXIT_OK
    entries = store.entries()

    total = sum(entry.size for entry in entries)
    by_kind: dict = {}
    for entry in entries:
        parts = entry.key.split("/")
        # Layout: v<schema>/<config>/<kind>/...
        kind = parts[2] if len(parts) > 2 else parts[-1]
        count, size = by_kind.get(kind, (0, 0))
        by_kind[kind] = (count + 1, size + entry.size)
    configs = {entry.key.split("/")[1] for entry in entries if "/" in entry.key}
    cap = store.max_bytes
    print(f"store: {root}")
    print(f"entries: {len(entries)}  configs: {len(configs)}  "
          f"size: {_format_bytes(total)}"
          + (f" / cap {_format_bytes(cap)}" if cap else ""))
    for kind in sorted(by_kind):
        count, size = by_kind[kind]
        print(f"  {kind:<10s} {count:>5d} entries  {_format_bytes(size)}")
    quarantined = store.quarantined()
    if quarantined:
        size = sum(entry.size for entry in quarantined)
        print(f"quarantined: {len(quarantined)} blob(s), {_format_bytes(size)} "
              "(repro cache ls --quarantined)")
    return EXIT_OK


#: Cheap experiments the ``repro chaos --quick`` smoke runs (CI budget).
_CHAOS_QUICK = ("fig1", "table1", "table2", "fig6", "survey")


def _run_chaos(argv: List[str]) -> int:
    """Run experiments under a fault plan and require golden-clean results."""
    import shutil
    import tempfile

    from repro.faults import FaultPlan, default_chaos_plan
    from repro.qa.goldens import GOLDEN_CONFIG, default_golden_dir, verify_payload
    from repro.runner import RetryPolicy, run_experiments

    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description=(
            "Robustness gate: run experiments under a deterministic "
            "fault-injection plan (corrupt reads, disk-full writes, worker "
            "crashes, hangs) and require every one to complete with "
            "golden-identical results anyway. Exits nonzero on any "
            "failure, any golden drift, or if no fault actually fired."
        ),
    )
    parser.add_argument("--seed", dest="chaos_seed", type=int, default=1337,
                        metavar="N",
                        help="fault-plan seed (default 1337); decides which "
                             "experiments draw which faults, deterministically")
    parser.add_argument("--sites", type=int, default=None, metavar="N",
                        help=f"site universe size "
                             f"(default {GOLDEN_CONFIG.n_sites} — the golden "
                             "scale; changing it needs matching --golden-dir)")
    parser.add_argument("--days", type=int, default=None, metavar="N",
                        help=f"simulated days (default {GOLDEN_CONFIG.n_days})")
    parser.add_argument("--world-seed", dest="seed", type=int, default=None,
                        metavar="N",
                        help=f"world seed (default {GOLDEN_CONFIG.seed})")
    parser.add_argument("--plan", default=None, metavar="PATH",
                        help="load a fault plan from JSON instead of the "
                             "seeded default plan")
    parser.add_argument("--jobs", type=int, default=2, metavar="N",
                        help="supervised worker processes (default 2)")
    parser.add_argument("--quick", action="store_true",
                        help=f"run only the cheap subset "
                             f"({', '.join(_CHAOS_QUICK)}) — the CI smoke")
    parser.add_argument("--timeout", type=float, default=120.0, metavar="SECONDS",
                        help="per-experiment deadline (default 120); hung "
                             "workers are killed and resubmitted")
    parser.add_argument("--experiment", action="append", default=[],
                        metavar="NAME",
                        help="run only this experiment (repeatable)")
    parser.add_argument("--manifest", default="chaos-manifest.json",
                        metavar="PATH",
                        help="chaos run manifest path "
                             "(default ./chaos-manifest.json)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="artifact store root (default: a throwaway "
                             "directory, removed afterwards — chaos never "
                             "pollutes the real cache)")
    parser.add_argument("--golden-dir", default=None, metavar="DIR",
                        help="golden snapshot directory "
                             "(default: nearest tests/golden)")
    args = parser.parse_args(argv)

    names = list(args.experiment) if args.experiment else (
        list(_CHAOS_QUICK) if args.quick else list(SPECS)
    )
    unknown = [name for name in names if name not in SPECS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return EXIT_USAGE
    config = WorldConfig.from_args(args, base=GOLDEN_CONFIG)
    golden_dir = Path(args.golden_dir if args.golden_dir else default_golden_dir())
    if args.plan is not None:
        try:
            plan = FaultPlan.from_json(Path(args.plan).read_text())
        except (OSError, ValueError) as error:
            print(f"unreadable fault plan {args.plan}: {error}", file=sys.stderr)
            return EXIT_USAGE
    else:
        # Hangs must outlast the deadline by a wide margin so "recovered
        # from a hang" always means "the timeout fired", never "it woke up".
        plan = default_chaos_plan(
            args.chaos_seed, names, hang_seconds=max(args.timeout * 4, 30.0)
        )
    scratch = args.cache_dir is None
    cache_dir = (
        tempfile.mkdtemp(prefix="repro-chaos-") if scratch else args.cache_dir
    )
    jobs = max(1, args.jobs)
    print(f"[chaos: seed {plan.seed}, {len(plan.rules)} fault rule(s); "
          f"world: {config.n_sites} sites, {config.n_days} days, seed "
          f"{config.seed}; jobs {jobs}; timeout {args.timeout:.0f}s; "
          f"cache {cache_dir}{' (scratch)' if scratch else ''}]\n")
    try:
        payloads, manifest, manifest_file = run_experiments(
            names,
            config,
            jobs=jobs,
            cache_dir=cache_dir,
            max_bytes=_default_max_bytes(),
            manifest_path=args.manifest,
            keep_data=True,
            timeout=args.timeout,
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=3),
        )
    finally:
        if scratch:
            shutil.rmtree(cache_dir, ignore_errors=True)

    golden_ok = True
    by_name = {outcome.name: outcome for outcome in manifest.outcomes}
    for payload in payloads:
        name = str(payload["name"])
        outcome = by_name[name]
        status = verify_payload(
            name, payload, golden_dir / f"{name}.json", config, update=False
        )
        outcome.golden_status = status.status
        golden_ok = golden_ok and status.ok
        faults = dict(payload.get("faults", {}))
        notes = [f"{site.split('.')[-1]} x{count}" for site, count in sorted(faults.items())]
        if outcome.submissions > 1:
            notes.append(f"resubmitted x{outcome.submissions - 1}")
        if outcome.attempts > 1:
            notes.append(f"{outcome.attempts} attempts")
        mark = "ok " if outcome.ok and status.ok else "FAIL"
        detail = status.status if outcome.ok else (
            "timeout" if outcome.timed_out
            else "worker died" if outcome.worker_died
            else "error"
        )
        suffix = f"  [{', '.join(notes)}]" if notes else ""
        print(f"[{mark}] {name:10s} {detail:8s} ({outcome.seconds:5.1f}s){suffix}")
        if not outcome.ok and outcome.error:
            print(f"       {outcome.error.strip().splitlines()[-1]}")
    if manifest_file is not None:
        manifest.write(manifest_file)

    block = manifest.faults or {}
    injected: Dict[str, int] = dict(block.get("injected", {}))
    timeouts = int(block.get("timeouts", 0))
    deaths = int(block.get("worker_deaths", 0))
    total_faults = sum(injected.values()) + timeouts + deaths
    summary = ", ".join(f"{site}={count}" for site, count in sorted(injected.items()))
    print(f"\nfaults injected: {total_faults} "
          f"({summary or 'none'}; timeouts {timeouts}, worker deaths {deaths}, "
          f"resubmissions {int(block.get('resubmissions', 0))})")
    recovered = list(block.get("recovered", []))
    if recovered:
        print(f"recovered: {', '.join(recovered)}")
    if manifest_file is not None:
        print(f"[manifest: {manifest_file}]")

    all_ok = all(outcome.ok for outcome in manifest.outcomes)
    if not all_ok:
        print("\nchaos: FAIL (experiment failures)", file=sys.stderr)
        return EXIT_FAILURE
    if not golden_ok:
        print("\nchaos: FAIL (results drifted from goldens under faults)",
              file=sys.stderr)
        return EXIT_FAILURE
    if total_faults < 1:
        print("\nchaos: FAIL (no fault fired — the plan exercised nothing)",
              file=sys.stderr)
        return EXIT_FAILURE
    print("\nchaos: every experiment recovered and stayed golden-clean")
    return EXIT_OK


def _run_serve(argv: List[str]) -> int:
    """Serve precomputed results over HTTP (or run the resilience selftest)."""
    from repro.faults import FaultPlan
    from repro.faults import inject as fault_inject
    from repro.qa.goldens import GOLDEN_CONFIG, default_golden_dir
    from repro.serve import AccessLog, MetricsService, ServeSettings
    from repro.serve.server import DEFAULT_PORT

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Resilient metrics service: expose precomputed results over "
            "HTTP (/v1/experiments, /v1/lists/<provider>/<day>, /healthz, "
            "/readyz, /metricz) with per-request deadlines, bounded-queue "
            "load shedding, a circuit breaker around artifact-store reads "
            "(last-known-good fallback + store repair), and graceful drain "
            "on SIGTERM/SIGINT."
        ),
        parents=[_world_parent(BENCH_CONFIG), _cache_parent()],
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT, metavar="N",
                        help=f"bind port (default {DEFAULT_PORT}; 0 picks "
                             "an ephemeral port)")
    parser.add_argument("--jobs", type=int, default=8, metavar="N",
                        help="max concurrent /v1 requests (default 8); "
                             "beyond this requests queue, then shed")
    parser.add_argument("--queue-depth", type=int, default=16, metavar="N",
                        help="requests allowed to wait for a slot before "
                             "shedding (default 16)")
    parser.add_argument("--deadline-ms", type=float, default=1000.0, metavar="MS",
                        help="per-request budget for /v1 endpoints "
                             "(default 1000)")
    parser.add_argument("--drain-seconds", type=float, default=5.0,
                        metavar="SECONDS",
                        help="budget for finishing in-flight requests on "
                             "SIGTERM (default 5)")
    parser.add_argument("--breaker-threshold", type=int, default=3, metavar="N",
                        help="consecutive store-read failures that open the "
                             "circuit (default 3)")
    parser.add_argument("--breaker-cooldown", type=float, default=None,
                        metavar="SECONDS",
                        help="open time before a half-open probe "
                             "(default 1.0 serving, 0.4 under --selftest)")
    parser.add_argument("--fault-plan", default=None, metavar="PATH",
                        help="inject faults from this plan JSON under live "
                             "traffic (see repro.faults)")
    parser.add_argument("--access-log", default=None, metavar="PATH",
                        help="append structured logfmt access log here")
    parser.add_argument("--golden-dir", default=None, metavar="DIR",
                        help="golden snapshot directory for warmup "
                             "verification (default: nearest tests/golden)")
    parser.add_argument("--experiment", action="append", default=[],
                        metavar="NAME",
                        help="expose only this experiment (repeatable; "
                             "default: the whole registry)")
    parser.add_argument("--quick", action="store_true",
                        help="serve at golden scale (the config "
                             "`repro all --quick` populates)")
    parser.add_argument("--selftest", action="store_true",
                        help="boot the service on an ephemeral port, replay "
                             "a deterministic chaos request mix, assert "
                             "availability / golden bodies / shed headers / "
                             "breaker cycle / clean drain, then exit")
    parser.add_argument("--clients", type=int, default=3, metavar="N",
                        help="selftest: concurrent client threads (default 3)")
    parser.add_argument("--min-requests", type=int, default=400, metavar="N",
                        help="selftest: minimum chaos-mix volume (default 400)")
    parser.add_argument("--chaos-seed", type=int, default=1337, metavar="N",
                        help="selftest: fault-plan seed (default 1337)")
    args = parser.parse_args(argv)

    unknown = [name for name in args.experiment if name not in SPECS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return EXIT_USAGE
    cache_dir = _cache_dir_from_args(args)
    if cache_dir is None:
        print("repro serve reads precomputed results from the artifact "
              "store; it cannot run with --no-cache", file=sys.stderr)
        return EXIT_USAGE
    config = WorldConfig.from_args(
        args, base=GOLDEN_CONFIG if args.quick else BENCH_CONFIG
    )
    plan = None
    if args.fault_plan is not None:
        try:
            plan = FaultPlan.from_json(Path(args.fault_plan).read_text())
        except (OSError, ValueError) as error:
            print(f"unreadable fault plan {args.fault_plan}: {error}",
                  file=sys.stderr)
            return EXIT_USAGE
    if args.golden_dir is not None:
        golden_dir = Path(args.golden_dir)
    else:
        try:
            golden_dir = Path(default_golden_dir())
        except (OSError, FileNotFoundError):
            golden_dir = None
    settings = ServeSettings(
        host=args.host,
        port=0 if args.selftest else args.port,
        max_inflight=max(1, args.jobs),
        queue_depth=max(0, args.queue_depth),
        deadline_ms=args.deadline_ms,
        drain_seconds=args.drain_seconds,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_seconds=(
            args.breaker_cooldown if args.breaker_cooldown is not None
            else (0.4 if args.selftest else 1.0)
        ),
    )
    access_log = AccessLog(args.access_log) if args.access_log else AccessLog()

    if args.selftest:
        from repro.serve.selftest import DEFAULT_SELFTEST_NAMES, run_selftest

        names = args.experiment or list(DEFAULT_SELFTEST_NAMES)
        print(f"[selftest: {len(names)} experiment(s); world: "
              f"{config.n_sites} sites, {config.n_days} days, seed "
              f"{config.seed}; cache {cache_dir}]\n")
        report = run_selftest(
            config,
            cache_dir,
            names=names,
            plan=plan,
            seed=args.chaos_seed,
            clients=max(1, args.clients),
            settings=settings,
            golden_dir=golden_dir,
            access_log=access_log,
            jobs=max(1, args.jobs),
            min_requests=max(1, args.min_requests),
        )
        print(report.render())
        if args.access_log:
            print(f"\n[access log: {args.access_log}]")
        return EXIT_OK if report.ok else EXIT_FAILURE

    store = ArtifactStore(cache_dir, _default_max_bytes())
    service = MetricsService(
        config,
        store,
        settings=settings,
        names=args.experiment or None,
        golden_dir=golden_dir,
        access_log=access_log,
    )
    if plan is not None:
        fault_inject.activate(plan)
        print(f"[fault plan armed: seed {plan.seed}, "
              f"{len(plan.rules)} rule(s)]")
    print(f"[warming: {config.n_sites} sites, {config.n_days} days, seed "
          f"{config.seed}; cache {cache_dir}]")
    statuses = service.warm()
    available = sum(1 for status in statuses.values() if status == "ok")
    for name, status in sorted(statuses.items()):
        if status != "ok":
            print(f"[{name}: {status} — run `repro all"
                  f"{' --quick' if args.quick else ''}` to populate]",
                  file=sys.stderr)
    try:
        print(f"[serving {available}/{len(statuses)} experiment(s) on "
              f"http://{service.host}:{settings.port or '(ephemeral)'} — "
              "Ctrl-C or SIGTERM to drain]")
        try:
            return service.run_forever()
        except OSError as error:
            print(f"cannot bind {service.host}:{settings.port}: {error}",
                  file=sys.stderr)
            return EXIT_FAILURE
    finally:
        fault_inject.activate(None)


def _run_loadgen(argv: List[str]) -> int:
    """Drive persona load at the metrics service; gate on SLOs."""
    from repro.loadgen.harness import LoadgenOptions, run_loadgen
    from repro.loadgen.personas import parse_mix
    from repro.loadgen.report import SloThresholds

    parser = argparse.ArgumentParser(
        prog="repro loadgen",
        description=(
            "Deterministic load harness for the metrics service: seeded "
            "client personas (dashboard pollers / researchers / health "
            "probes) driven open-loop (--rate) or closed-loop "
            "(--closed-loop), validating every response body, honoring "
            "Retry-After on sheds, and writing an SLO-gated "
            "LOADGEN_<yyyymmdd>.json report.  --spawn forks a chaos-armed "
            "`repro serve` child and additionally requires real admission-"
            "gate sheds under saturation, >= 99% golden-correct "
            "availability under faults, and a clean SIGTERM drain."
        ),
        parents=[_cache_parent()],
    )
    # Not required at the argparse level: `--compare PREV --against CUR`
    # is a pure file comparison and needs no target at all.  run_loadgen
    # validates the combination.
    target = parser.add_mutually_exclusive_group()
    target.add_argument("--base-url", default=None, metavar="URL",
                        help="load an already-running service at this "
                             "http URL")
    target.add_argument("--spawn", action="store_true",
                        help="fork a `repro serve --quick` child against "
                             "the prebuilt cache (chaos fault plan armed "
                             "unless --no-faults)")
    pacing = parser.add_mutually_exclusive_group()
    pacing.add_argument("--rate", type=float, default=None, metavar="RPS",
                        help="open loop: constant arrival rate in "
                             "requests/second (honest latency under a "
                             "fixed offered load)")
    pacing.add_argument("--closed-loop", type=int, default=None, metavar="N",
                        help="closed loop: N concurrent persona sessions "
                             "(default 6; offered load adapts to service "
                             "speed)")
    parser.add_argument("--duration", type=float, default=None,
                        metavar="SECONDS",
                        help="nominal run length (default 4 with --quick, "
                             "else 15; the chaos phase extends past it "
                             "until its minimum request volume is met)")
    parser.add_argument("--mix", default=None, metavar="SPEC",
                        help="persona weights, e.g. "
                             "dashboards=0.7,researchers=0.2,probes=0.1 "
                             "(the default)")
    parser.add_argument("--seed", type=int, default=7, metavar="N",
                        help="master seed for every persona schedule and "
                             "the chaos fault plan (default 7)")
    parser.add_argument("--slo", default=None, metavar="SPEC",
                        help="exit-code thresholds, e.g. "
                             "p99_ms=750,shed_rate=0.25,error_rate=0.01,"
                             "availability=0.99,body_drift=0 (latency and "
                             "rate keys judge the steady/chaos phase; "
                             "body_drift is run-wide)")
    parser.add_argument("--fault-plan", default=None, metavar="PATH",
                        help="spawn: arm the child with this plan JSON "
                             "instead of the built-in chaos plan")
    parser.add_argument("--no-faults", action="store_true",
                        help="spawn: run the child fault-free (pure "
                             "capacity measurement)")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="report path (default ./LOADGEN_<yyyymmdd>"
                             ".json)")
    parser.add_argument("--jobs", type=int, default=2, metavar="N",
                        help="spawn: workers for populating missing "
                             "results (default 2)")
    parser.add_argument("--timeout", type=float, default=5.0,
                        metavar="SECONDS",
                        help="per-request client timeout (default 5)")
    parser.add_argument("--quick", action="store_true",
                        help="CI-smoke sizing: short phases at golden "
                             "scale")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="client processes; each drives a "
                             "deterministic shard of the persona roster "
                             "and the parent merges the spilled "
                             "histograms (default 1: in-process)")
    parser.add_argument("--no-keepalive", action="store_true",
                        help="open a fresh connection per request "
                             "instead of pooling persistent HTTP/1.1 "
                             "connections")
    parser.add_argument("--latency-out", default=None, metavar="PATH",
                        help="latency-trajectory path (default "
                             "./LATENCY_<yyyymmdd>.json)")
    parser.add_argument("--compare", default=None, metavar="PREV",
                        help="gate this run's p99 trajectory against a "
                             "previous LATENCY_*.json; regressions "
                             "beyond --p99-tolerance exit nonzero")
    parser.add_argument("--against", default=None, metavar="CUR",
                        help="with --compare and no target: compare two "
                             "existing LATENCY files without generating "
                             "any load")
    parser.add_argument("--p99-tolerance", type=float, default=None,
                        metavar="FRACTION",
                        help="allowed relative p99 growth for --compare "
                             "(default 0.5, i.e. +50%% plus a fixed "
                             "25ms slack)")
    args = parser.parse_args(argv)

    cache_dir = _cache_dir_from_args(args)
    if args.spawn and cache_dir is None:
        print("repro loadgen --spawn serves precomputed results; it cannot "
              "run with --no-cache", file=sys.stderr)
        return EXIT_USAGE
    try:
        options = LoadgenOptions(
            seed=args.seed,
            base_url=args.base_url,
            spawn=args.spawn,
            duration_seconds=args.duration,
            rate=args.rate,
            closed_loop=args.closed_loop,
            mix=parse_mix(args.mix),
            slo=SloThresholds.parse(args.slo),
            report_path=args.report,
            quick=args.quick,
            cache_dir=cache_dir,
            jobs=max(1, args.jobs),
            fault_plan=args.fault_plan,
            no_faults=args.no_faults,
            timeout=args.timeout,
            workers=args.workers,
            keepalive=not args.no_keepalive,
            latency_out=args.latency_out,
            compare=args.compare,
            against=args.against,
            **({} if args.p99_tolerance is None
               else {"p99_tolerance": args.p99_tolerance}),
        )
    except ValueError as error:
        print(f"bad loadgen options: {error}", file=sys.stderr)
        return EXIT_USAGE
    try:
        result = run_loadgen(options)
    except ValueError as error:
        # Inconsistent flags or an unreadable/mis-shaped LATENCY file.
        print(f"bad loadgen invocation: {error}", file=sys.stderr)
        return EXIT_USAGE
    except (RuntimeError, OSError) as error:
        print(f"loadgen failed: {error}", file=sys.stderr)
        return EXIT_FAILURE
    print(result.render())
    return EXIT_OK if result.ok else EXIT_FAILURE


def _run_netproxy(argv: List[str]) -> int:
    """Run the deterministic TCP chaos proxy until SIGINT/SIGTERM."""
    import signal
    import threading

    from repro.faults import FaultPlan, NetProxy, default_net_plan

    parser = argparse.ArgumentParser(
        prog="repro netproxy",
        description=(
            "Deterministic TCP chaos proxy: forwards every connection to "
            "the upstream, injecting seeded per-connection transport "
            "faults (resets, stalls, garbled/truncated/split writes, "
            "mid-response closes) from the net.* fault-plan sites. "
            "Prints the fault accounting and the fault-sequence digest "
            "on shutdown."
        ),
    )
    parser.add_argument("--listen", type=int, required=True, metavar="PORT",
                        help="port to accept client connections on")
    parser.add_argument("--listen-host", default="127.0.0.1", metavar="HOST",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--upstream", required=True, metavar="HOST:PORT",
                        help="where clean traffic is forwarded")
    parser.add_argument("--fault-plan", default=None, metavar="PATH",
                        help="fault plan JSON (net.* rules); default: the "
                             "seeded built-in net plan")
    parser.add_argument("--seed", type=int, default=7, metavar="N",
                        help="seed for the built-in net plan (default 7); "
                             "ignored with --fault-plan")
    args = parser.parse_args(argv)

    host, _, port_text = args.upstream.rpartition(":")
    if not host or not port_text.isdigit():
        print(f"--upstream must be HOST:PORT, got {args.upstream!r}",
              file=sys.stderr)
        return EXIT_USAGE
    if args.fault_plan is not None:
        try:
            plan = FaultPlan.from_json(Path(args.fault_plan).read_text())
        except (OSError, ValueError) as error:
            print(f"unreadable fault plan {args.fault_plan}: {error}",
                  file=sys.stderr)
            return EXIT_USAGE
    else:
        plan = default_net_plan(args.seed)

    proxy = NetProxy(
        host, int(port_text), plan=plan,
        host=args.listen_host, port=args.listen,
    )
    stop = threading.Event()
    previous = {
        sig: signal.signal(sig, lambda *_: stop.set())
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        proxy.start()
    except OSError as error:
        print(f"cannot listen on {args.listen_host}:{args.listen}: {error}",
              file=sys.stderr)
        return EXIT_FAILURE
    print(f"[netproxy: {args.listen_host}:{proxy.port} -> {args.upstream}; "
          f"{len(plan.rules)} rule(s), seed {plan.seed}; Ctrl-C to stop]")
    try:
        stop.wait()
    finally:
        proxy.stop()
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    fired = proxy.fired_snapshot()
    print(f"connections: {proxy.connections}")
    print("fault fires: " + (
        ", ".join(f"{site}={n}" for site, n in sorted(fired.items()))
        or "none"
    ))
    print(f"fault digest: {proxy.fault_digest()}")
    return EXIT_OK


def _run_chaos_net(argv: List[str]) -> int:
    """The transport-resilience acceptance gate."""
    from repro.loadgen.netchaos import ChaosNetOptions, run_chaos_net

    parser = argparse.ArgumentParser(
        prog="repro chaos-net",
        description=(
            "Transport-resilience gate: drive a scripted load sequence "
            "through the deterministic chaos proxy into a chaos-armed "
            "serve child. Every armed net.* site must fire, availability "
            "must hold >= 99% with zero golden drift, and the "
            "fault-sequence digest must replay bit-for-bit."
        ),
    )
    parser.add_argument("--seed", type=int, default=7, metavar="N",
                        help="net fault-plan seed (default 7)")
    parser.add_argument("--quick", action="store_true",
                        help="short script (the CI smoke)")
    parser.add_argument("--requests", type=int, default=None, metavar="N",
                        help="override the script length")
    parser.add_argument("--jobs", type=int, default=2, metavar="N",
                        help="workers for populating missing results "
                             "(default 2)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="artifact store root (default: the shared "
                             "cache — results are reused, never mutated)")
    parser.add_argument("--manifest", default=None, metavar="PATH",
                        help="write the fault-accounting manifest JSON here")
    args = parser.parse_args(argv)

    options = ChaosNetOptions(
        seed=args.seed,
        quick=args.quick,
        requests=args.requests,
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        manifest_path=args.manifest,
    )
    try:
        result = run_chaos_net(options)
    except (RuntimeError, OSError) as error:
        print(f"chaos-net failed: {error}", file=sys.stderr)
        return EXIT_FAILURE
    print(result.render())
    return EXIT_OK if result.ok else EXIT_FAILURE


def _run_chaos_data(argv: List[str]) -> int:
    """The degraded-provider ingestion acceptance gate."""
    from repro.loadgen.datachaos import ChaosDataOptions, run_chaos_data

    parser = argparse.ArgumentParser(
        prog="repro chaos-data",
        description=(
            "Degraded-data gate: prove the gap-tolerant rolling "
            "aggregation bit-identical to a batch recompute under an "
            "armed data-fault plan, then drive a scripted client mix "
            "against a data-chaos serve child. Every armed data.* site "
            "must fire, every degraded day must be marked in "
            "data_health, availability must hold >= 99%, and both "
            "fault-sequence digests must replay bit-for-bit."
        ),
    )
    parser.add_argument("--seed", type=int, default=7, metavar="N",
                        help="data fault-plan seed (default 7)")
    parser.add_argument("--quick", action="store_true",
                        help="small proof world and short script "
                             "(the CI smoke)")
    parser.add_argument("--requests", type=int, default=None, metavar="N",
                        help="override the script length")
    parser.add_argument("--jobs", type=int, default=2, metavar="N",
                        help="workers for populating missing results "
                             "(default 2)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="artifact store root (default: the shared "
                             "cache — results are reused, never mutated)")
    parser.add_argument("--manifest", default=None, metavar="PATH",
                        help="write the fault-accounting manifest JSON here")
    args = parser.parse_args(argv)

    options = ChaosDataOptions(
        seed=args.seed,
        quick=args.quick,
        requests=args.requests,
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        manifest_path=args.manifest,
    )
    try:
        result = run_chaos_data(options)
    except (RuntimeError, OSError, ValueError) as error:
        print(f"chaos-data failed: {error}", file=sys.stderr)
        return EXIT_FAILURE
    print(result.render())
    return EXIT_OK if result.ok else EXIT_FAILURE


#: Subcommand dispatch table; anything not listed is an experiment id.
_COMMANDS: Dict[str, Callable[[List[str]], int]] = {
    "export": _run_export,
    "recommend": _run_recommend,
    "ranking": _run_ranking,
    "validate": _run_validate,
    "summary": _run_summary,
    "cache": _run_cache,
    "bench": _run_bench,
    "verify-goldens": _run_verify_goldens,
    "verify-invariants": _run_verify_invariants,
    "chaos": _run_chaos,
    "serve": _run_serve,
    "loadgen": _run_loadgen,
    "netproxy": _run_netproxy,
    "chaos-net": _run_chaos_net,
    "chaos-data": _run_chaos_data,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code (never raises
    ``SystemExit`` — argparse usage errors come back as 2)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        handler = _COMMANDS.get(argv[0]) if argv else None
        if handler is not None:
            return handler(argv[1:])
        return _run_experiments(argv)
    except SystemExit as exit_:
        # argparse exits 2 on usage errors and 0 on --help; normalize to
        # an int return so embedding callers get uniform exit codes.
        code = exit_.code
        if code is None:
            return EXIT_OK
        return code if isinstance(code, int) else EXIT_USAGE
    except BrokenPipeError:
        # Output piped to a consumer that exited early (`repro cache ls |
        # head`): the Unix convention is to die quietly, not traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
