"""Command-line interface.

Four families of commands:

* experiments — ``repro fig2``, ``repro table1``, ``repro all``: reproduce
  the paper's tables and figures.  Expensive artifacts (world, traffic
  tensors, CDN metrics, provider lists) persist in a content-addressed
  cache, so a cold run builds the world once and every later invocation
  hydrates it from disk; ``--jobs N`` runs experiments in parallel with
  per-experiment failure isolation and a JSON run manifest.
* ``repro cache stats|ls|clear`` — inspect or empty the artifact store.
* ``repro export <provider> <path>`` — write a simulated list as a
  Tranco-style rank CSV (or CrUX-style origin CSV for bucketed lists).
* ``repro recommend`` — score every list for a study profile, per the
  paper's Section 7 guidance.
* ``repro verify-goldens [--update]`` / ``repro verify-invariants`` — the
  regression gate: recompute every experiment's structured rows and diff
  them against the checked-in goldens (``tests/golden/``), and check the
  metamorphic invariant registry (``repro.qa``).  Both exit nonzero on
  drift or violation.

Examples::

    repro list                      # available experiments
    repro fig2                      # top lists vs Cloudflare
    repro all --jobs 4              # the whole paper, in parallel
    repro table1 --sites 40000      # coverage table, larger scale
    repro cache stats               # what the artifact store holds
    repro export umbrella /tmp/umbrella.csv --limit 1000
    repro recommend --need-ranks --magnitude 10K
    repro verify-goldens --jobs 4     # regression-check every experiment
    repro verify-goldens --update     # regenerate the golden snapshots
    repro verify-invariants           # metamorphic pipeline properties
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

import numpy as np

from repro.core.experiments import EXPERIMENTS
from repro.core.pipeline import BENCH_CONFIG, ExperimentContext, experiment_context
from repro.store import ArtifactStore, default_cache_dir

__all__ = ["main", "build_parser"]


def _default_max_bytes() -> Optional[int]:
    env = os.environ.get("REPRO_CACHE_MAX_BYTES")
    if env is None:
        from repro.store import DEFAULT_MAX_BYTES

        return DEFAULT_MAX_BYTES
    value = int(env)
    return None if value <= 0 else value


def _add_world_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sites", type=int, default=BENCH_CONFIG.n_sites,
        help=f"site universe size (default {BENCH_CONFIG.n_sites})",
    )
    parser.add_argument(
        "--days", type=int, default=BENCH_CONFIG.n_days,
        help=f"simulated days (default {BENCH_CONFIG.n_days})",
    )
    parser.add_argument(
        "--seed", type=int, default=BENCH_CONFIG.seed,
        help="world seed (default: the February 2022 seed)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="artifact store root (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro-toplists)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent artifact store for this run",
    )


def _cache_dir_from_args(args: argparse.Namespace) -> Optional[str]:
    if args.no_cache:
        return None
    return args.cache_dir if args.cache_dir else str(default_cache_dir())


def _store_from_args(args: argparse.Namespace) -> Optional[ArtifactStore]:
    cache_dir = _cache_dir_from_args(args)
    if cache_dir is None:
        return None
    return ArtifactStore(cache_dir, _default_max_bytes())


def build_parser() -> argparse.ArgumentParser:
    """The experiment-mode argument parser (kept for API stability)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables and figures from 'Toppling Top Lists' (IMC 2022).",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (fig1..fig8, table1..table3, survey), 'all', or 'list'",
    )
    parser.add_argument(
        "--svg-dir", default=None, metavar="DIR",
        help="also render the figures as SVG files into DIR "
             "(forces in-process execution)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for running experiments (default 1)",
    )
    parser.add_argument(
        "--manifest", default=None, metavar="PATH",
        help="write the JSON run manifest here (default: <cache>/runs/)",
    )
    _add_world_arguments(parser)
    return parser


def _build_export_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro export", description="Export a simulated top list as CSV."
    )
    parser.add_argument("provider", help="provider name (alexa, umbrella, crux...)")
    parser.add_argument("path", help="output CSV path")
    parser.add_argument("--day", type=int, default=0, help="snapshot day (default 0)")
    parser.add_argument("--limit", type=int, default=None, help="max rows")
    _add_world_arguments(parser)
    return parser


def _build_recommend_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro recommend",
        description="Score every top list for a study profile (Section 7).",
    )
    parser.add_argument("--need-ranks", action="store_true",
                        help="the study uses individual site ranks")
    parser.add_argument("--magnitude", default="100K",
                        choices=["1K", "10K", "100K", "1M"])
    parser.add_argument("--must-cover", action="append", default=[],
                        metavar="CATEGORY",
                        help="category the study cannot under-sample (repeatable)")
    _add_world_arguments(parser)
    return parser


def _context_from_args(args: argparse.Namespace) -> ExperimentContext:
    config = BENCH_CONFIG.scaled(n_sites=args.sites, n_days=args.days, seed=args.seed)
    started = time.perf_counter()
    ctx = experiment_context(config, store=_store_from_args(args))
    print(
        f"[world: {config.n_sites} sites, {config.n_days} days, seed {config.seed}; "
        f"ready in {time.perf_counter() - started:.1f}s]\n"
    )
    return ctx


def _run_export(argv: List[str]) -> int:
    from repro.core.datasets import write_crux_csv, write_rank_csv

    args = _build_export_parser().parse_args(argv)
    ctx = _context_from_args(args)
    provider = ctx.providers.get(args.provider)
    if provider is None:
        print(f"unknown provider: {args.provider}; choose from "
              f"{', '.join(ctx.providers)}", file=sys.stderr)
        return 2
    ranked = provider.daily_list(args.day)
    if ranked.is_bucketed:
        rows = write_crux_csv(ctx.world, ranked, args.path)
        print(f"wrote {rows} origin rows (CrUX format) to {args.path}")
    else:
        rows = write_rank_csv(ctx.world, ranked, args.path, limit=args.limit)
        print(f"wrote {rows} rank rows to {args.path}")
    return 0


def _run_recommend(argv: List[str]) -> int:
    from repro.core.recommend import StudyProfile, recommend_lists

    args = _build_recommend_parser().parse_args(argv)
    ctx = _context_from_args(args)
    magnitude = dict(zip(ctx.magnitude_labels, ctx.magnitudes))[args.magnitude]
    try:
        profile = StudyProfile(
            needs_ranks=args.need_ranks,
            magnitude=magnitude,
            must_cover=tuple(args.must_cover),
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    scores = recommend_lists(ctx.world, ctx.evaluator, ctx.providers, profile)
    print(f"{'list':10s} {'score':>8s} {'set':>6s} {'rank':>6s}  notes")
    for score in scores:
        rank_text = "-" if np.isnan(score.rank_quality) else f"{score.rank_quality:.3f}"
        display = "excluded" if not score.usable else f"{score.score:.3f}"
        notes = ", ".join(
            f"under-includes {cat} (OR={ratio:.2f})"
            for cat, ratio in score.coverage_penalties.items()
        )
        print(f"{score.provider:10s} {display:>8s} {score.set_quality:6.3f} "
              f"{rank_text:>6s}  {notes}")
    print(f"\nrecommendation: {scores[0].provider}")
    return 0


def _run_experiments(argv: List[str]) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "list":
        print("available experiments:")
        for name in EXPERIMENTS:
            doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
            print(f"  {name:8s} {doc}")
        print("\nother commands: export, recommend, validate, summary, cache, "
              "verify-goldens, verify-invariants")
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(EXPERIMENTS)}, all, list, export, recommend",
              file=sys.stderr)
        return 2

    from repro.runner import run_experiments

    config = BENCH_CONFIG.scaled(n_sites=args.sites, n_days=args.days, seed=args.seed)
    cache_dir = _cache_dir_from_args(args)
    jobs = max(1, args.jobs)
    if args.svg_dir and jobs > 1:
        print("[svg export runs in-process; ignoring --jobs]", file=sys.stderr)
        jobs = 1
    print(
        f"[world: {config.n_sites} sites, {config.n_days} days, seed {config.seed}; "
        f"jobs {jobs}; cache {'off' if cache_dir is None else cache_dir}]\n"
    )
    payloads, manifest, manifest_file = run_experiments(
        names,
        config,
        jobs=jobs,
        cache_dir=cache_dir,
        max_bytes=_default_max_bytes(),
        manifest_path=args.manifest,
        keep_results=bool(args.svg_dir),
    )
    for payload, outcome in zip(payloads, manifest.outcomes):
        if not outcome.ok:
            continue
        print(f"=== {outcome.name}: {payload.get('title', '')} ({outcome.seconds:.1f}s) ===")
        print(payload.get("text", ""))
        if args.svg_dir and "result" in payload:
            from repro.core.figure_export import export_figures

            for path in export_figures(payload["result"], args.svg_dir):
                print(f"[svg] {path}")
        print()
    for outcome in manifest.failures:
        print(f"[FAILED after {outcome.attempts} attempt(s)] {outcome.name}:",
              file=sys.stderr)
        print(outcome.error or "unknown error", file=sys.stderr)
    totals = manifest.cache_totals()
    if totals:
        summary = ", ".join(
            f"{kind} {counts.get('hits', 0)}h/{counts.get('misses', 0)}m"
            for kind, counts in sorted(totals.items())
        )
        print(f"[cache: {summary}]")
    if manifest_file is not None:
        print(f"[manifest: {manifest_file}]")
    return 1 if manifest.failures else 0


def _run_verify_goldens(argv: List[str]) -> int:
    from repro.qa.goldens import GOLDEN_CONFIG, default_golden_dir, verify_goldens

    parser = argparse.ArgumentParser(
        prog="repro verify-goldens",
        description=(
            "Recompute every experiment at the pinned golden configuration "
            "and diff the structured results against tests/golden/."
        ),
    )
    parser.add_argument("--update", action="store_true",
                        help="regenerate the golden snapshots instead of diffing")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default 1)")
    parser.add_argument("--golden-dir", default=None, metavar="DIR",
                        help="golden snapshot directory "
                             "(default: nearest tests/golden)")
    parser.add_argument("--experiment", action="append", default=[],
                        metavar="NAME",
                        help="verify only this experiment (repeatable)")
    parser.add_argument("--manifest", default=None, metavar="PATH",
                        help="write the JSON run manifest here")
    parser.add_argument(
        "--sites", type=int, default=GOLDEN_CONFIG.n_sites,
        help=f"site universe size (default {GOLDEN_CONFIG.n_sites}; "
             "checked-in goldens only match the default)",
    )
    parser.add_argument("--days", type=int, default=GOLDEN_CONFIG.n_days,
                        help=f"simulated days (default {GOLDEN_CONFIG.n_days})")
    parser.add_argument("--seed", type=int, default=GOLDEN_CONFIG.seed,
                        help=f"world seed (default {GOLDEN_CONFIG.seed})")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="artifact store root (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro-toplists)",
    )
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent artifact store")
    args = parser.parse_args(argv)

    names = args.experiment or None
    unknown = [name for name in (names or []) if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    config = GOLDEN_CONFIG.scaled(n_sites=args.sites, n_days=args.days, seed=args.seed)
    golden_dir = args.golden_dir if args.golden_dir else default_golden_dir()
    cache_dir = _cache_dir_from_args(args)
    print(f"[goldens: {golden_dir}; world: {config.n_sites} sites, "
          f"{config.n_days} days, seed {config.seed}; jobs {max(1, args.jobs)}]\n")
    report = verify_goldens(
        golden_dir,
        names=names,
        config=config,
        jobs=max(1, args.jobs),
        update=args.update,
        cache_dir=cache_dir,
        max_bytes=_default_max_bytes(),
        manifest_path=args.manifest,
    )
    print(report.render())
    if report.manifest_file is not None:
        print(f"[manifest: {report.manifest_file}]")
    return 0 if report.ok else 1


def _run_verify_invariants(argv: List[str]) -> int:
    from repro.qa.goldens import GOLDEN_CONFIG
    from repro.qa.invariants import INVARIANTS, run_invariants

    parser = argparse.ArgumentParser(
        prog="repro verify-invariants",
        description="Check the metamorphic invariant registry over a world.",
    )
    parser.add_argument("--only", action="append", default=[], metavar="NAME",
                        help="run only this invariant (repeatable)")
    parser.add_argument("--list", action="store_true", dest="list_invariants",
                        help="list registered invariants and exit")
    parser.add_argument("--sites", type=int, default=GOLDEN_CONFIG.n_sites,
                        help=f"site universe size (default {GOLDEN_CONFIG.n_sites})")
    parser.add_argument("--days", type=int, default=GOLDEN_CONFIG.n_days,
                        help=f"simulated days (default {GOLDEN_CONFIG.n_days})")
    parser.add_argument("--seed", type=int, default=GOLDEN_CONFIG.seed,
                        help=f"world seed (default {GOLDEN_CONFIG.seed})")
    args = parser.parse_args(argv)

    if args.list_invariants:
        for invariant in INVARIANTS:
            print(f"  {invariant.name:24s} {invariant.description}")
        return 0
    known = {invariant.name for invariant in INVARIANTS}
    unknown = [name for name in args.only if name not in known]
    if unknown:
        print(f"unknown invariant(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(sorted(known))}", file=sys.stderr)
        return 2
    config = GOLDEN_CONFIG.scaled(n_sites=args.sites, n_days=args.days, seed=args.seed)
    started = time.perf_counter()
    ctx = experiment_context(config)
    print(f"[world: {config.n_sites} sites, {config.n_days} days, seed "
          f"{config.seed}; ready in {time.perf_counter() - started:.1f}s]\n")
    outcomes = run_invariants(ctx, names=args.only or None)
    failed = 0
    for outcome in outcomes:
        mark = "ok " if outcome.ok else "FAIL"
        print(f"[{mark}] {outcome.name} ({outcome.seconds:.2f}s)")
        for violation in outcome.violations:
            print(f"       {violation}")
        failed += 0 if outcome.ok else 1
    print(f"\n{len(outcomes) - failed}/{len(outcomes)} invariants hold")
    return 1 if failed else 0


def _run_validate(argv: List[str]) -> int:
    from repro.worldgen.validate import validate_world

    parser = argparse.ArgumentParser(
        prog="repro validate",
        description="Run the structural self-checks against a world.",
    )
    _add_world_arguments(parser)
    args = parser.parse_args(argv)
    ctx = _context_from_args(args)
    results = validate_world(ctx.world)
    failed = 0
    for result in results:
        mark = "ok " if result.passed else "FAIL"
        print(f"[{mark}] {result.name}: {result.detail}")
        failed += 0 if result.passed else 1
    print(f"\n{len(results) - failed}/{len(results)} checks passed")
    return 1 if failed else 0


def _run_summary(argv: List[str]) -> int:
    from repro.worldgen.summary import summarize_world

    parser = argparse.ArgumentParser(
        prog="repro summary", description="Describe a generated world."
    )
    _add_world_arguments(parser)
    args = parser.parse_args(argv)
    ctx = _context_from_args(args)
    print(summarize_world(ctx.world))
    return 0


def _format_bytes(size: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024
    return f"{size:.1f} GiB"


def _run_cache(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Inspect or clear the persistent artifact store.",
    )
    parser.add_argument("action", choices=["stats", "ls", "clear"],
                        help="what to do with the store")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="artifact store root (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro-toplists)",
    )
    args = parser.parse_args(argv)
    root = args.cache_dir if args.cache_dir else str(default_cache_dir())
    store = ArtifactStore(root, _default_max_bytes())

    if args.action == "clear":
        freed = store.clear()
        print(f"cleared {root} ({_format_bytes(freed)} freed)")
        return 0

    entries = store.entries()
    if args.action == "ls":
        if not entries:
            print(f"(empty store at {root})")
            return 0
        for entry in entries:
            stamp = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(entry.mtime))
            print(f"{entry.size:>12d}  {stamp}  {entry.key}")
        return 0

    total = sum(entry.size for entry in entries)
    by_kind: dict = {}
    for entry in entries:
        parts = entry.key.split("/")
        # Layout: v<schema>/<config>/<kind>/...
        kind = parts[2] if len(parts) > 2 else parts[-1]
        count, size = by_kind.get(kind, (0, 0))
        by_kind[kind] = (count + 1, size + entry.size)
    configs = {entry.key.split("/")[1] for entry in entries if "/" in entry.key}
    cap = store.max_bytes
    print(f"store: {root}")
    print(f"entries: {len(entries)}  configs: {len(configs)}  "
          f"size: {_format_bytes(total)}"
          + (f" / cap {_format_bytes(cap)}" if cap else ""))
    for kind in sorted(by_kind):
        count, size = by_kind[kind]
        print(f"  {kind:<10s} {count:>5d} entries  {_format_bytes(size)}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        if argv and argv[0] == "export":
            return _run_export(argv[1:])
        if argv and argv[0] == "recommend":
            return _run_recommend(argv[1:])
        if argv and argv[0] == "validate":
            return _run_validate(argv[1:])
        if argv and argv[0] == "summary":
            return _run_summary(argv[1:])
        if argv and argv[0] == "cache":
            return _run_cache(argv[1:])
        if argv and argv[0] == "verify-goldens":
            return _run_verify_goldens(argv[1:])
        if argv and argv[0] == "verify-invariants":
            return _run_verify_invariants(argv[1:])
        return _run_experiments(argv)
    except BrokenPipeError:
        # Output piped to a consumer that exited early (`repro cache ls |
        # head`): the Unix convention is to die quietly, not traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
