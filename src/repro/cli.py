"""Command-line interface.

Three families of commands:

* experiments — ``repro fig2``, ``repro table1``, ``repro all``: reproduce
  the paper's tables and figures over a freshly built (or process-cached)
  world.
* ``repro export <provider> <path>`` — write a simulated list as a
  Tranco-style rank CSV (or CrUX-style origin CSV for bucketed lists).
* ``repro recommend`` — score every list for a study profile, per the
  paper's Section 7 guidance.

Examples::

    repro list                      # available experiments
    repro fig2                      # top lists vs Cloudflare
    repro table1 --sites 40000      # coverage table, larger scale
    repro export umbrella /tmp/umbrella.csv --limit 1000
    repro recommend --need-ranks --magnitude 10K
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

import numpy as np

from repro.core.experiments import EXPERIMENTS, run_experiment
from repro.core.pipeline import BENCH_CONFIG, ExperimentContext, experiment_context

__all__ = ["main", "build_parser"]


def _add_world_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sites", type=int, default=BENCH_CONFIG.n_sites,
        help=f"site universe size (default {BENCH_CONFIG.n_sites})",
    )
    parser.add_argument(
        "--days", type=int, default=BENCH_CONFIG.n_days,
        help=f"simulated days (default {BENCH_CONFIG.n_days})",
    )
    parser.add_argument(
        "--seed", type=int, default=BENCH_CONFIG.seed,
        help="world seed (default: the February 2022 seed)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The experiment-mode argument parser (kept for API stability)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables and figures from 'Toppling Top Lists' (IMC 2022).",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (fig1..fig8, table1..table3, survey), 'all', or 'list'",
    )
    parser.add_argument(
        "--svg-dir", default=None, metavar="DIR",
        help="also render the figures as SVG files into DIR",
    )
    _add_world_arguments(parser)
    return parser


def _build_export_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro export", description="Export a simulated top list as CSV."
    )
    parser.add_argument("provider", help="provider name (alexa, umbrella, crux...)")
    parser.add_argument("path", help="output CSV path")
    parser.add_argument("--day", type=int, default=0, help="snapshot day (default 0)")
    parser.add_argument("--limit", type=int, default=None, help="max rows")
    _add_world_arguments(parser)
    return parser


def _build_recommend_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro recommend",
        description="Score every top list for a study profile (Section 7).",
    )
    parser.add_argument("--need-ranks", action="store_true",
                        help="the study uses individual site ranks")
    parser.add_argument("--magnitude", default="100K",
                        choices=["1K", "10K", "100K", "1M"])
    parser.add_argument("--must-cover", action="append", default=[],
                        metavar="CATEGORY",
                        help="category the study cannot under-sample (repeatable)")
    _add_world_arguments(parser)
    return parser


def _context_from_args(args: argparse.Namespace) -> ExperimentContext:
    config = BENCH_CONFIG.scaled(n_sites=args.sites, n_days=args.days, seed=args.seed)
    started = time.perf_counter()
    ctx = experiment_context(config)
    print(
        f"[world: {config.n_sites} sites, {config.n_days} days, seed {config.seed}; "
        f"ready in {time.perf_counter() - started:.1f}s]\n"
    )
    return ctx


def _run_export(argv: List[str]) -> int:
    from repro.core.datasets import write_crux_csv, write_rank_csv

    args = _build_export_parser().parse_args(argv)
    ctx = _context_from_args(args)
    provider = ctx.providers.get(args.provider)
    if provider is None:
        print(f"unknown provider: {args.provider}; choose from "
              f"{', '.join(ctx.providers)}", file=sys.stderr)
        return 2
    ranked = provider.daily_list(args.day)
    if ranked.is_bucketed:
        rows = write_crux_csv(ctx.world, ranked, args.path)
        print(f"wrote {rows} origin rows (CrUX format) to {args.path}")
    else:
        rows = write_rank_csv(ctx.world, ranked, args.path, limit=args.limit)
        print(f"wrote {rows} rank rows to {args.path}")
    return 0


def _run_recommend(argv: List[str]) -> int:
    from repro.core.recommend import StudyProfile, recommend_lists

    args = _build_recommend_parser().parse_args(argv)
    ctx = _context_from_args(args)
    magnitude = dict(zip(ctx.magnitude_labels, ctx.magnitudes))[args.magnitude]
    try:
        profile = StudyProfile(
            needs_ranks=args.need_ranks,
            magnitude=magnitude,
            must_cover=tuple(args.must_cover),
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    scores = recommend_lists(ctx.world, ctx.evaluator, ctx.providers, profile)
    print(f"{'list':10s} {'score':>8s} {'set':>6s} {'rank':>6s}  notes")
    for score in scores:
        rank_text = "-" if np.isnan(score.rank_quality) else f"{score.rank_quality:.3f}"
        display = "excluded" if not score.usable else f"{score.score:.3f}"
        notes = ", ".join(
            f"under-includes {cat} (OR={ratio:.2f})"
            for cat, ratio in score.coverage_penalties.items()
        )
        print(f"{score.provider:10s} {display:>8s} {score.set_quality:6.3f} "
              f"{rank_text:>6s}  {notes}")
    print(f"\nrecommendation: {scores[0].provider}")
    return 0


def _run_experiments(argv: List[str]) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "list":
        print("available experiments:")
        for name in EXPERIMENTS:
            doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
            print(f"  {name:8s} {doc}")
        print("\nother commands: export, recommend, validate, summary")
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(EXPERIMENTS)}, all, list, export, recommend",
              file=sys.stderr)
        return 2

    ctx = _context_from_args(args)
    for name in names:
        started = time.perf_counter()
        result = run_experiment(name, ctx)
        elapsed = time.perf_counter() - started
        print(f"=== {result.name}: {result.title} ({elapsed:.1f}s) ===")
        print(result.text)
        if args.svg_dir:
            from repro.core.figure_export import export_figures

            for path in export_figures(result, args.svg_dir):
                print(f"[svg] {path}")
        print()
    return 0


def _run_validate(argv: List[str]) -> int:
    from repro.worldgen.validate import validate_world

    parser = argparse.ArgumentParser(
        prog="repro validate",
        description="Run the structural self-checks against a world.",
    )
    _add_world_arguments(parser)
    args = parser.parse_args(argv)
    ctx = _context_from_args(args)
    results = validate_world(ctx.world)
    failed = 0
    for result in results:
        mark = "ok " if result.passed else "FAIL"
        print(f"[{mark}] {result.name}: {result.detail}")
        failed += 0 if result.passed else 1
    print(f"\n{len(results) - failed}/{len(results)} checks passed")
    return 1 if failed else 0


def _run_summary(argv: List[str]) -> int:
    from repro.worldgen.summary import summarize_world

    parser = argparse.ArgumentParser(
        prog="repro summary", description="Describe a generated world."
    )
    _add_world_arguments(parser)
    args = parser.parse_args(argv)
    ctx = _context_from_args(args)
    print(summarize_world(ctx.world))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "export":
        return _run_export(argv[1:])
    if argv and argv[0] == "recommend":
        return _run_recommend(argv[1:])
    if argv and argv[0] == "validate":
        return _run_validate(argv[1:])
    if argv and argv[0] == "summary":
        return _run_summary(argv[1:])
    return _run_experiments(argv)


if __name__ == "__main__":
    sys.exit(main())
