#!/usr/bin/env python3
"""Look inside the event-level pipeline: raw requests, DNS, and metrics.

Everything the bench-scale experiments compute analytically can also be
*counted*: this example simulates individual browsing sessions, prints a
few raw Cloudflare-style log lines and DNS cache statistics, and derives
the Section 3 filter-aggregation counts by literal aggregation.

Run:  python examples/request_log_anatomy.py
"""

from repro import TrafficModel, WorldConfig, build_world
from repro.cdn.filters import FINAL_SEVEN, describe_combo
from repro.traffic.eventsim import EventSimulator


def main() -> None:
    config = WorldConfig(n_sites=400, n_days=2, seed=3)
    world = build_world(config)
    simulator = EventSimulator(world, TrafficModel(world), n_orgs=3)

    print("simulating one day of browsing (8000 sessions, with DNS)...")
    events = simulator.simulate_day(0, n_sessions=8_000, with_dns=True)
    print(f"  sessions: {len(events.sessions)}")
    print(f"  cloudflare request records: {events.logs.record_count(0)}")
    print(f"  dns queries reaching the resolver tier: "
          f"{events.dns_log.total_queries(0)}\n")

    print("a few raw log lines (host, path, status, agent, tls):")
    for record in list(events.logs._records[0])[:6]:  # noqa: SLF001 - example introspection
        tls = "tls-handshake" if record.new_tls_session else "resumed"
        print(f"  {record.client_ip:15s} {record.host:28s} "
              f"{record.path[:18]:18s} {record.status} "
              f"{record.browser_family:12s} {tls}")

    hits = sum(c.stats.hits for c in events.dns_caches)
    lookups = sum(c.stats.lookups for c in events.dns_caches)
    print(f"\nshared DNS forwarder caches absorbed "
          f"{100 * hits / max(1, lookups):.1f}% of lookups")
    print("(this suppression is why DNS-based lists compress popularity)\n")

    print("the seven final metrics, counted from records (top 5 sites each):")
    for combo in FINAL_SEVEN:
        ranking = events.logs.ranking(0, combo, world.n_sites)[:5]
        names = ", ".join(world.sites.names[int(s)] for s in ranking)
        print(f"  {describe_combo(combo):38s} {names}")

    print("\nnote how the leaders differ by metric — the Figure 1 effect,")
    print("reproduced by counting actual requests instead of formulas.")


if __name__ == "__main__":
    main()
