#!/usr/bin/env python3
"""Attack a top list, watch Tranco blunt it.

The paper builds on the manipulation literature: single-source lists are
cheap to game (fake panel pageviews against Alexa, botnet DNS queries
against Umbrella), and Tranco's 30-day cross-list aggregation is the
defence.  This example promotes a deep-tail nobody with a three-day attack
and prints the daily rank trajectories on each list.

Run:  python examples/attack_and_defend.py
"""

from repro import TrafficModel, WorldConfig, build_world
from repro.providers.manipulation import AttackWindow, run_manipulation_experiment


def _render(trajectory):
    return " ".join("  ----" if r is None else f"{r:6d}" for r in trajectory)


def main() -> None:
    config = WorldConfig(n_sites=4_000, n_days=12, seed=23)
    world = build_world(config)
    traffic = TrafficModel(world)

    target = 3_500  # true rank 3501: a site nobody visits
    attack = AttackWindow(
        target_site=target, start_day=4, end_day=6, intensity=6_000
    )
    print(f"target: {world.sites.names[target]} (true rank {target + 1})")
    print(f"attack: days {attack.start_day}-{attack.end_day}, "
          f"{attack.intensity:.0f} fake observations/day\n")

    clean = run_manipulation_experiment(
        world, traffic, AttackWindow(target, 99, 99, 0.0)
    )
    attacked = run_manipulation_experiment(world, traffic, attack)

    days_header = " ".join(f"day{d:3d}" for d in range(config.n_days))
    print(f"{'list':9s} {days_header}")
    for name in ("alexa", "umbrella", "tranco"):
        print(f"{name:9s} {_render(attacked.trajectories[name])}")

    print("\nbest attacked rank per list (clean best in parentheses):")
    for name in ("alexa", "umbrella", "tranco"):
        best = attacked.best_rank(name)
        base = clean.best_rank(name)
        base_text = "absent" if base is None else str(base)
        best_text = "absent" if best is None else str(best)
        print(f"  {name:9s} {best_text:>7s}  (clean: {base_text})")

    print("\nthe shape to notice: the panel/DNS lists crater under a cheap")
    print("attack; Tranco's 30-day Dowdall aggregation dilutes it by an")
    print("order of magnitude — and the Alexa gain decays after the attack")
    print("stops, because fake pageviews age out of the smoothing window.")


if __name__ == "__main__":
    main()
