#!/usr/bin/env python3
"""Evaluate your own top list against the Cloudflare metrics.

Shows the full external-researcher workflow on raw strings:

1. bring a ranked list of names in any mix of formats (domains, FQDNs,
   origins) — here we fabricate one by perturbing ground truth, but it
   could come from a CSV;
2. normalize it to registrable domains with the real PSL matcher;
3. filter it to Cloudflare-served sites with the simulated HEAD probe
   (checking the ``cf-ray`` header, exactly like Section 4.3);
4. compare against the same-size top slice of each server-side metric.

Run:  python examples/evaluate_custom_list.py
"""

import numpy as np

from repro import (
    FINAL_SEVEN,
    CdnMetricEngine,
    TrafficModel,
    WorldConfig,
    build_world,
    jaccard_index,
    normalize_strings,
    rank_correlation_of_lists,
)
from repro.cdn.adoption import build_virtual_network
from repro.netsim.probe import CloudflareProbe


def fabricate_my_list(world, rng, length=1500):
    """Pretend we built a ranking from our own telescope: true popularity
    seen through heavy noise, published in mixed formats."""
    noisy_score = world.sites.weight * rng.lognormal(0.0, 1.2, world.n_sites)
    order = np.argsort(-noisy_score)[:length]
    entries = []
    for site in order:
        domain = world.sites.names[site]
        style = rng.random()
        if style < 0.3:
            entries.append(f"www.{domain}")          # FQDN-style entry
        elif style < 0.4:
            entries.append(f"https://{domain}")      # origin-style entry
        else:
            entries.append(domain)                   # plain domain
    return entries


def main() -> None:
    config = WorldConfig(n_sites=4_000, n_days=3, seed=7)
    world = build_world(config)
    traffic = TrafficModel(world)
    engine = CdnMetricEngine(world, traffic)
    rng = np.random.default_rng(1)

    my_list = fabricate_my_list(world, rng)
    print(f"my list: {len(my_list)} raw entries, e.g. {my_list[:3]}")

    # 1. Normalize mixed-format entries to registrable domains (min rank).
    domains, ranks = normalize_strings(my_list)
    print(f"normalized to {len(domains)} unique registrable domains")

    # 2. Keep only Cloudflare-served sites, via the cf-ray HEAD probe.
    network = build_virtual_network(world)
    probe = CloudflareProbe(network)
    cf_domains = probe.cloudflare_hosts(domains)
    print(f"cloudflare serves {len(cf_domains)} of them "
          f"({probe.probes_issued} HEAD probes issued)\n")

    # 3. Map to site ids and compare against each metric's top-n.
    my_sites = np.array([world.site_index_of_domain(d) for d in cf_domains])
    n = len(my_sites)
    print(f"{'metric':20s} {'jaccard':>8s} {'spearman':>9s}")
    for combo in FINAL_SEVEN:
        cf_top = engine.top(0, combo, n)
        jj = jaccard_index(my_sites, cf_top)
        rho = rank_correlation_of_lists(my_sites, cf_top).rho
        print(f"{combo:20s} {jj:8.3f} {rho:9.3f}")

    print("\ninterpretation guide (Section 4.4): even 90% overlap of two")
    print("100-element lists is only JJ = 0.82 — compare against the")
    print("intra-Cloudflare band before judging a list harshly.")


if __name__ == "__main__":
    main()
