#!/usr/bin/env python3
"""Audit one top list for the paper's three bias axes.

Given a provider, this example reproduces the Section 6 methodology for it
alone: category inclusion odds (Table 3), per-country accuracy against
Chrome telemetry (Figure 7), and platform skew (Figure 4).

Run:  python examples/bias_audit.py [provider]    (default: alexa)
"""

import sys

import numpy as np

from repro import (
    CdnMetricEngine,
    ChromeTelemetry,
    TrafficModel,
    WorldConfig,
    build_providers,
    build_world,
    normalize_list,
)
from repro.core.bias import country_bias, platform_bias
from repro.core.regression import category_inclusion_odds
from repro.worldgen.countries import TELEMETRY_COUNTRIES


def main() -> None:
    provider_name = sys.argv[1] if len(sys.argv) > 1 else "alexa"
    config = WorldConfig(n_sites=6_000, n_days=5, seed=11)
    world = build_world(config)
    traffic = TrafficModel(world)
    telemetry = ChromeTelemetry(world, traffic)
    providers = build_providers(world, traffic, telemetry)
    if provider_name not in providers:
        raise SystemExit(f"unknown provider {provider_name!r}; "
                         f"choose from {', '.join(providers)}")

    provider = providers[provider_name]
    normalized = normalize_list(world, provider.daily_list(0))
    print(f"auditing '{provider_name}': {len(normalized)} domains after "
          f"normalization\n")

    # --- category bias (Table 3 methodology) --------------------------
    engine = CdnMetricEngine(world, traffic)
    universe = engine.top(0, "all:requests", engine.n_cf_sites // 2)
    odds = category_inclusion_odds(world, universe, normalized)
    print("category inclusion odds (vs all other categories):")
    interesting = sorted(
        (r for r in odds.values() if np.isfinite(r.odds_ratio) and r.n_category >= 10),
        key=lambda r: r.odds_ratio,
    )
    for r in interesting[:4]:
        print(f"  under-included: {r.category:12s} OR={r.odds_ratio:5.2f} "
              f"(n={r.n_category}, p={r.p_value:.3f})")
    for r in interesting[-3:]:
        print(f"  over-included:  {r.category:12s} OR={r.odds_ratio:5.2f} "
              f"(n={r.n_category}, p={r.p_value:.3f})")

    # --- country bias (Figure 7 methodology) --------------------------
    magnitude = config.bucket_sizes[2]
    by_country = country_bias(telemetry, {provider_name: normalized}, magnitude)
    cells = by_country[provider_name]
    ordered = sorted(TELEMETRY_COUNTRIES, key=lambda c: cells[c].jaccard, reverse=True)
    print("\naccuracy by client country (Jaccard vs Chrome telemetry):")
    print("  best: " + ", ".join(f"{c}={cells[c].jaccard:.3f}" for c in ordered[:3]))
    print("  worst: " + ", ".join(f"{c}={cells[c].jaccard:.3f}" for c in ordered[-3:]))

    # --- platform bias (Figure 4 methodology) -------------------------
    by_platform = platform_bias(telemetry, {provider_name: normalized}, magnitude)
    windows = by_platform[provider_name]["windows"].jaccard
    android = by_platform[provider_name]["android"].jaccard
    tilt = "desktop" if windows > android else "mobile"
    print(f"\nplatform skew: windows={windows:.3f} vs android={android:.3f} "
          f"-> tilts {tilt}")


if __name__ == "__main__":
    main()
