#!/usr/bin/env python3
"""Operationalize the paper's recommendations: which list should I use?

The paper closes with guidance for researchers (Section 7).  This example
turns it into a measured decision: describe your study (do you need exact
ranks? which magnitude? any category you must not under-sample?) and get a
recommendation computed from the simulated evaluation, not from opinion.

Run:  python examples/choose_a_list.py --need-ranks --magnitude 10K
"""

import argparse

import numpy as np

from repro import (
    FINAL_SEVEN,
    CdnMetricEngine,
    CloudflareEvaluator,
    PROVIDER_ORDER,
    TrafficModel,
    WorldConfig,
    build_providers,
    build_world,
    normalize_list,
)
from repro.core.regression import category_inclusion_odds
from repro.weblib.categories import CATEGORIES


def parse_args():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--need-ranks", action="store_true",
                        help="your analysis uses individual site ranks")
    parser.add_argument("--magnitude", default="100K",
                        choices=["1K", "10K", "100K", "1M"],
                        help="the rank magnitude you study")
    parser.add_argument("--must-cover", default=None,
                        help="a category your study cannot under-sample "
                             f"(one of: {', '.join(c.name for c in CATEGORIES)})")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    config = WorldConfig(n_sites=6_000, n_days=5, seed=19)
    world = build_world(config)
    traffic = TrafficModel(world)
    providers = build_providers(world, traffic)
    engine = CdnMetricEngine(world, traffic)
    evaluator = CloudflareEvaluator(world, engine)

    magnitude = dict(zip(config.bucket_labels, config.bucket_sizes))[args.magnitude]

    print(f"scoring lists for: magnitude={args.magnitude}, "
          f"need_ranks={args.need_ranks}, must_cover={args.must_cover}\n")

    scores = {}
    notes = {}
    for name in PROVIDER_ORDER:
        results = [
            evaluator.evaluate_month(providers[name], combo, magnitude, days=range(3))
            for combo in FINAL_SEVEN
        ]
        set_quality = float(np.mean([r.jaccard for r in results]))
        rho_values = [r.spearman for r in results if not np.isnan(r.spearman)]
        rank_quality = float(np.mean(rho_values)) if rho_values else float("nan")

        score = set_quality
        note = []
        if args.need_ranks:
            if np.isnan(rank_quality):
                score = -1.0
                note.append("publishes buckets only — unusable for ranks")
            else:
                score = 0.5 * set_quality + 0.5 * rank_quality
        if args.must_cover:
            universe = engine.top(0, "all:requests", engine.n_cf_sites // 2)
            normalized = normalize_list(world, providers[name].daily_list(0))
            odds = category_inclusion_odds(world, universe, normalized)
            cell = odds[args.must_cover]
            if np.isfinite(cell.odds_ratio) and cell.odds_ratio < 0.5:
                score *= 0.5
                note.append(f"under-includes {args.must_cover} "
                            f"(OR={cell.odds_ratio:.2f})")
        scores[name] = score
        notes[name] = "; ".join(note) if note else ""

    print(f"{'list':10s} {'score':>7s}  notes")
    for name in sorted(scores, key=scores.get, reverse=True):
        display = "excluded" if scores[name] < 0 else f"{scores[name]:.3f}"
        print(f"{name:10s} {display:>7s}  {notes[name]}")

    winner = max(scores, key=scores.get)
    print(f"\nrecommendation: {winner}")
    print("(the paper's qualitative advice — CrUX for set studies, Umbrella")
    print(" as the DNS-world fallback, rank-based studies need care — should")
    print(" emerge from the measured scores above)")


if __name__ == "__main__":
    main()
