#!/usr/bin/env python3
"""Quickstart: build a world, publish top lists, evaluate them.

Reproduces the paper's core loop in miniature:

1. build a synthetic web ecosystem (ground-truth popularity + vantages);
2. let each provider publish its top list;
3. normalize the lists to registrable domains (Section 4.2);
4. evaluate them against Cloudflare server-side metrics (Section 4.3);
5. print the Figure 2-style summary.

Run:  python examples/quickstart.py
"""

from repro import (
    FINAL_SEVEN,
    PROVIDER_ORDER,
    CdnMetricEngine,
    CloudflareEvaluator,
    TrafficModel,
    WorldConfig,
    build_providers,
    build_world,
)


def main() -> None:
    # A small world keeps the example snappy; bump n_sites for fidelity.
    config = WorldConfig(n_sites=5_000, n_days=7, seed=42)
    print(f"building a world of {config.n_sites} sites, {config.n_days} days...")
    world = build_world(config)
    traffic = TrafficModel(world)

    print(f"the ground truth: top 3 sites are {world.sites.names[:3]}")
    cf_rate = world.sites.cf_served.mean()
    print(f"cloudflare serves {100 * cf_rate:.1f}% of them (but none of the giants)\n")

    providers = build_providers(world, traffic)
    engine = CdnMetricEngine(world, traffic)
    evaluator = CloudflareEvaluator(world, engine)

    magnitude = config.bucket_sizes[2]  # the "100K" analog
    print(f"evaluating each list's top {magnitude} against {len(FINAL_SEVEN)} "
          f"Cloudflare metrics (day-averaged):\n")
    print(f"{'list':10s} {'jaccard':>16s} {'spearman':>16s}")
    for name in PROVIDER_ORDER:
        results = [
            evaluator.evaluate_month(providers[name], combo, magnitude, days=range(4))
            for combo in FINAL_SEVEN
        ]
        jj = [r.jaccard for r in results]
        rho = [r.spearman for r in results if r.spearman == r.spearman]  # drop nan
        jj_text = f"{min(jj):.2f} - {max(jj):.2f}"
        rho_text = f"{min(rho):.2f} - {max(rho):.2f}" if rho else "n/a (bucketed)"
        print(f"{name:10s} {jj_text:>16s} {rho_text:>16s}")

    print("\nthe paper's headline shape: CrUX on top, Umbrella next, the")
    print("panel/link/single-country lists trailing — emerging purely from")
    print("each vantage point's measurement mechanism.")


if __name__ == "__main__":
    main()
